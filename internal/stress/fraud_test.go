package stress

import (
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"testing"

	"qtag/internal/beacon"
	"qtag/internal/campaign"
	"qtag/internal/detect"
	"qtag/internal/faults"
	"qtag/internal/obs"
	"qtag/internal/report"
	"qtag/internal/simrand"
	"qtag/internal/wal"
)

// This file is the detection layer's proof harness: adversarial actor
// traffic (internal/campaign) is driven through the full HTTP ingest
// path of StartIngestServer with -detect wiring, the lifecycle tracer's
// fraud tags serve as ground truth, and the scores GET /report returns
// are held to explicit per-scenario precision/recall floors. The fraud
// chaos test then restarts the server mid-campaign and proves the
// scores rebuild from the WAL alone.

// fraudScenario is one row of the detection evaluation table.
type fraudScenario struct {
	name string
	// actors is the traffic mix; ground truth comes from their tags.
	actors []campaign.ActorSpec
	// dupNoise injects benign at-least-once retry re-submissions into
	// every actor's traffic — the false-positive hazard the duplicate
	// detector must ride out.
	dupNoise float64
	// minRecall / minPrecision are the floors over campaign-level
	// flags. Scenarios with no fraudulent campaigns pin maxFlagged
	// instead.
	minRecall    float64
	minPrecision float64
	maxFlagged   int
}

// runFraudScenario drives the scenario's actors through srv over HTTP
// and returns the oracle labels and the flagged-campaign set from
// GET /report.
func runFraudScenario(t *testing.T, sc fraudScenario) (labels map[string]bool, flagged map[string]bool, snap detect.Snapshot) {
	t.Helper()
	srv, err := StartIngestServer(IngestServerConfig{Shards: 4, Detect: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tracer := obs.NewLifecycleTracer(campaign.ActorEpoch)
	rng := simrand.New(97)
	var sink beacon.Sink = &beacon.HTTPSink{BaseURL: srv.URL, Retries: 2}
	if sc.dupNoise > 0 {
		sink = faults.NewSink(sink, rng.Fork("dup-noise"), faults.Profile{Duplicate: sc.dupNoise})
	}
	for _, spec := range sc.actors {
		if n := campaign.RunActor(spec, rng, sink, tracer); n == 0 {
			t.Fatalf("actor %s/%s emitted nothing", spec.Kind, spec.CampaignID)
		}
	}

	resp, err := http.Get(srv.URL + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /report: status %d", resp.StatusCode)
	}
	var r report.ViewabilityReport
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatalf("GET /report: decode: %v", err)
	}
	if r.Fraud == nil {
		t.Fatal("GET /report carries no fraud object with Detect enabled")
	}
	flagged = make(map[string]bool)
	for _, id := range r.Fraud.Flagged {
		flagged[id] = true
	}
	return campaign.OracleLabels(tracer), flagged, *r.Fraud
}

// precisionRecall scores a flagged set against oracle labels at
// campaign granularity.
func precisionRecall(labels map[string]bool, flagged map[string]bool) (precision, recall float64, fp int) {
	tp, fraudTotal := 0, 0
	for id, fraud := range labels {
		if fraud {
			fraudTotal++
			if flagged[id] {
				tp++
			}
		} else if flagged[id] {
			fp++
		}
	}
	precision, recall = 1, 1
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if fraudTotal > 0 {
		recall = float64(tp) / float64(fraudTotal)
	}
	return precision, recall, fp
}

// honestMix is the clean background population every scenario runs
// against, so false positives are measured on realistic traffic.
func honestMix(n int) []campaign.ActorSpec {
	specs := make([]campaign.ActorSpec, n)
	for i := range specs {
		specs[i] = campaign.ActorSpec{
			Kind:        campaign.ActorHonest,
			CampaignID:  fmt.Sprintf("camp-ok-%c", 'a'+i),
			Impressions: 60,
		}
	}
	return specs
}

// TestFraudPrecisionRecall: the table-driven detection evaluation. Each
// scenario's floors are part of the contract — a detector change that
// trades recall away or starts flagging honest campaigns fails here,
// not in production.
func TestFraudPrecisionRecall(t *testing.T) {
	scenarios := []fraudScenario{
		{
			name: "replay-flood",
			actors: append(honestMix(3),
				campaign.ActorSpec{Kind: campaign.ActorReplayFarm, CampaignID: "camp-replay-a", Impressions: 20},
				campaign.ActorSpec{Kind: campaign.ActorReplayFarm, CampaignID: "camp-replay-b", Impressions: 20}),
			minRecall:    0.9,
			minPrecision: 0.95,
		},
		{
			name: "spoofed-in-view",
			actors: append(honestMix(3),
				campaign.ActorSpec{Kind: campaign.ActorSpoofedInView, CampaignID: "camp-spoof", Impressions: 60}),
			minRecall:    0.9,
			minPrecision: 0.95,
		},
		{
			name: "ad-stacking",
			actors: append(honestMix(3),
				campaign.ActorSpec{Kind: campaign.ActorAdStacking, CampaignID: "camp-stack", Impressions: 60}),
			minRecall:    0.9,
			minPrecision: 0.95,
		},
		{
			name: "hidden-iframe",
			actors: append(honestMix(3),
				campaign.ActorSpec{Kind: campaign.ActorHiddenIframe, CampaignID: "camp-hidden", Impressions: 60}),
			minRecall:    0.9,
			minPrecision: 0.95,
		},
		{
			name: "duplicate-flood",
			actors: append(honestMix(3),
				campaign.ActorSpec{Kind: campaign.ActorDuplicateFlood, CampaignID: "camp-dupe", Impressions: 8, Replays: 40}),
			// Honest traffic carries benign retry noise; the flood must
			// still separate cleanly from it.
			dupNoise:     0.05,
			minRecall:    0.9,
			minPrecision: 0.95,
		},
		{
			name: "mixed",
			actors: append(honestMix(5),
				campaign.ActorSpec{Kind: campaign.ActorReplayFarm, CampaignID: "camp-replay", Impressions: 20},
				campaign.ActorSpec{Kind: campaign.ActorSpoofedInView, CampaignID: "camp-spoof", Impressions: 60},
				campaign.ActorSpec{Kind: campaign.ActorAdStacking, CampaignID: "camp-stack", Impressions: 60},
				campaign.ActorSpec{Kind: campaign.ActorHiddenIframe, CampaignID: "camp-hidden", Impressions: 60},
				campaign.ActorSpec{Kind: campaign.ActorDuplicateFlood, CampaignID: "camp-dupe", Impressions: 8, Replays: 40}),
			dupNoise:     0.03,
			minRecall:    0.9,
			minPrecision: 0.95,
		},
		{
			// The zero-false-positive floor: nothing but honest traffic,
			// with retry noise, must flag nothing at all.
			name:       "honest-only",
			actors:     honestMix(6),
			dupNoise:   0.05,
			maxFlagged: 0,
		},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			labels, flagged, snap := runFraudScenario(t, sc)
			precision, recall, fp := precisionRecall(labels, flagged)
			t.Logf("%s: precision=%.2f recall=%.2f fp=%d flagged=%v", sc.name, precision, recall, fp, snap.Flagged)
			if recall < sc.minRecall {
				t.Errorf("recall %.2f below floor %.2f (flagged %v, labels %v)", recall, sc.minRecall, snap.Flagged, labels)
			}
			if precision < sc.minPrecision {
				t.Errorf("precision %.2f below floor %.2f (flagged %v, labels %v)", precision, sc.minPrecision, snap.Flagged, labels)
			}
			if sc.minRecall == 0 && len(flagged) > sc.maxFlagged {
				t.Errorf("flagged %v in a scenario allowing at most %d flags", snap.Flagged, sc.maxFlagged)
			}
			// Every score the endpoint serves is a probability.
			for _, row := range snap.Rows {
				if row.Score < 0 || row.Score > 1 {
					t.Errorf("score out of [0,1]: %+v", row)
				}
			}
		})
	}
}

// TestFraudChaos: a server restart mid-campaign must not change a
// single fraud score — the detection layer's state is rebuilt from the
// WAL replay on boot, duplicate floods included, and ends byte-equal
// to an uninterrupted control run. make fraud-chaos runs this under
// -race.
func TestFraudChaos(t *testing.T) {
	// Capture the full deterministic beacon stream first so the same
	// submissions, in the same order, drive both runs.
	var stream []beacon.Event
	capture := sinkFunc(func(e beacon.Event) error { stream = append(stream, e); return nil })
	rng := simrand.New(41)
	for _, spec := range []campaign.ActorSpec{
		{Kind: campaign.ActorHonest, CampaignID: "camp-live", Impressions: 40},
		{Kind: campaign.ActorReplayFarm, CampaignID: "camp-replay", Impressions: 10, Replays: 3},
		{Kind: campaign.ActorDuplicateFlood, CampaignID: "camp-dupe", Impressions: 4, Replays: 20},
	} {
		campaign.RunActor(spec, rng, capture, nil)
	}
	if len(stream) < 100 {
		t.Fatalf("stream too small to cut meaningfully: %d", len(stream))
	}
	// Mid-campaign cut: the replay farm straddles it, so duplicate
	// state must survive the restart for the scores to come out equal.
	cut := len(stream) / 2

	durable := IngestServerConfig{
		Shards:         4,
		Fsync:          wal.FsyncAlways,
		SyncDurability: true,
		Detect:         true,
	}
	submit := func(t *testing.T, url string, events []beacon.Event) {
		t.Helper()
		sink := &beacon.HTTPSink{BaseURL: url, Retries: 2}
		for _, e := range events {
			if err := sink.Submit(e); err != nil {
				t.Fatalf("submit: %v", err)
			}
		}
	}

	// Control: one server, the whole stream, no interruption.
	ctrlCfg := durable
	ctrlCfg.WALDir = t.TempDir()
	ctrl, err := StartIngestServer(ctrlCfg)
	if err != nil {
		t.Fatal(err)
	}
	submit(t, ctrl.URL, stream)
	want := ctrl.Detect.Snapshot()
	if err := ctrl.Close(); err != nil {
		t.Fatal(err)
	}
	if len(want.Flagged) == 0 {
		t.Fatal("control run flagged nothing; the chaos comparison would be vacuous")
	}

	// Interrupted: same stream, but the server dies at the cut and a
	// fresh process recovers the WAL before the second half lands.
	dir := t.TempDir()
	chaosCfg := durable
	chaosCfg.WALDir = dir
	first, err := StartIngestServer(chaosCfg)
	if err != nil {
		t.Fatal(err)
	}
	submit(t, first.URL, stream[:cut])
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}
	second, err := StartIngestServer(chaosCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if second.Detect.DupEvents() == 0 {
		t.Fatal("WAL boot replay fed no duplicates to the detector; dup-flood state would be lost across restarts")
	}
	submit(t, second.URL, stream[cut:])
	got := second.Detect.Snapshot()

	if !reflect.DeepEqual(got, want) {
		g, _ := json.Marshal(got)
		w, _ := json.Marshal(want)
		t.Fatalf("restart changed fraud scores\n got: %s\nwant: %s", g, w)
	}
}

// sinkFunc adapts a function to beacon.Sink.
type sinkFunc func(beacon.Event) error

func (f sinkFunc) Submit(e beacon.Event) error { return f(e) }

// Package stress implements the randomized lab stress-testing the paper
// alludes to ("we have performed a thorough evaluation of our solution
// through stress tests in a lab environment", §1): it generates random
// adversarial browsing scenarios — scroll storms, window moves, resizes,
// tab switches, occlusion, CPU-load changes — runs Q-Tag through them,
// and differentially compares the tag's in-view verdict against a
// tolerance-bracketed ground-truth oracle.
//
// Because any sampled measurement has finite resolution (100 ms sampling
// windows, ±half-a-level area resolution), the checker brackets the truth
// with a strict oracle (tighter criteria) and a lenient oracle (looser
// criteria). When both agree the truth is robust and the tag must match;
// when they disagree the scenario is a borderline case that no
// fixed-resolution measurement can be expected to decide, and it is
// reported as such rather than judged. A correct tag produces zero
// mismatches on robust scenarios — asserted by the package tests over
// hundreds of random scenarios.
package stress

import (
	"fmt"
	"time"

	"qtag/internal/adtag"
	"qtag/internal/beacon"
	"qtag/internal/browser"
	"qtag/internal/dom"
	"qtag/internal/geom"
	"qtag/internal/qtag"
	"qtag/internal/simclock"
	"qtag/internal/simrand"
	"qtag/internal/viewability"
)

// Op is one kind of scripted browser abuse.
type Op int

// Scenario operations.
const (
	// OpScroll jumps the page scroll to a random offset.
	OpScroll Op = iota
	// OpResize resizes the window.
	OpResize
	// OpMoveWindow moves the window, possibly partially off-screen.
	OpMoveWindow
	// OpObscure toggles full occlusion by another application.
	OpObscure
	// OpTabAway switches to a background tab.
	OpTabAway
	// OpTabBack returns to the ad's tab.
	OpTabBack
	// OpCPULoad changes the device's CPU saturation (bounded so the
	// effective refresh rate stays above the tag's fps threshold — the
	// documented operating envelope of the technique).
	OpCPULoad
	// OpBlur removes window focus (must never affect measurement).
	OpBlur
	numOps
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpScroll:
		return "scroll"
	case OpResize:
		return "resize"
	case OpMoveWindow:
		return "move-window"
	case OpObscure:
		return "obscure"
	case OpTabAway:
		return "tab-away"
	case OpTabBack:
		return "tab-back"
	case OpCPULoad:
		return "cpu-load"
	case OpBlur:
		return "blur"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Step is one timed operation.
type Step struct {
	At time.Duration
	Op Op
	// A and B are op-specific parameters (scroll offset, window position,
	// size, load factor).
	A, B float64
}

// Scenario is a generated stress scenario.
type Scenario struct {
	Seed     uint64
	AdY      float64
	Video    bool
	Duration time.Duration
	Steps    []Step
}

// Generate draws a random scenario: an ad somewhere on a long page and
// 3–10 operations over 4–8 virtual seconds.
func Generate(rng *simrand.RNG) Scenario {
	sc := Scenario{
		AdY:      rng.Range(60, 3200),
		Video:    rng.Bool(0.25),
		Duration: time.Duration(rng.Range(4, 8) * float64(time.Second)),
	}
	steps := 3 + rng.Intn(8)
	for i := 0; i < steps; i++ {
		st := Step{
			At: time.Duration(rng.Range(0.1, 0.95) * float64(sc.Duration)),
			Op: Op(rng.Intn(int(numOps))),
		}
		switch st.Op {
		case OpScroll:
			st.A = rng.Range(0, 3500)
		case OpResize:
			st.A = rng.Range(700, 1600) // width
			st.B = rng.Range(500, 1000) // height
		case OpMoveWindow:
			st.A = rng.Range(-800, 1800)
			st.B = rng.Range(-500, 900)
		case OpObscure:
			st.A = float64(rng.Intn(2)) // 1 = obscure, 0 = reveal
		case OpCPULoad:
			// Stay inside the technique's envelope: ≤0.55 load keeps the
			// effective rate ≥27 fps, above the 20 fps threshold.
			st.A = rng.Range(0, 0.55)
		}
		sc.Steps = append(sc.Steps, st)
	}
	return sc
}

// Verdict classifies one differential run.
type Verdict int

// Verdicts.
const (
	// Agree: the tag matched a robust ground truth.
	Agree Verdict = iota
	// Borderline: the strict and lenient oracles disagree — the scenario
	// sits within measurement resolution of the criteria and is not
	// judged.
	Borderline
	// Mismatch: the tag contradicted a robust ground truth. A correct
	// implementation never produces these.
	Mismatch
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Agree:
		return "agree"
	case Borderline:
		return "borderline"
	default:
		return "MISMATCH"
	}
}

// RunResult is one scenario's differential outcome.
type RunResult struct {
	Scenario     Scenario
	TagInView    bool
	OracleStrict bool
	OracleNom    bool
	OracleLen    bool
	Verdict      Verdict
}

// Tolerances bracketing the nominal criteria (area in absolute fraction,
// dwell in wall time). They reflect the tag's resolution: one sampling
// window of dwell and half an X-layout level of area.
const (
	areaTolerance  = 0.06
	dwellTolerance = 250 * time.Millisecond
)

// Run executes one scenario differentially.
func Run(sc Scenario) RunResult {
	clock := simclock.New()
	b := browser.New(clock, browser.Options{Profile: browser.CertificationProfiles()[1],
		Screen: geom.Size{W: 1920, H: 1080}})
	defer b.Close()
	w := b.OpenWindow(geom.Point{X: 100, Y: 80}, geom.Size{W: 1280, H: 720})
	doc := dom.NewDocument("https://stress.example", geom.Size{W: 1280, H: 4000})
	page := w.ActiveTab().Navigate(doc)
	size := geom.Size{W: 300, H: 250}
	format := viewability.Display
	if sc.Video {
		size = geom.Size{W: 640, H: 360}
		format = viewability.Video
	}
	outer := doc.Root().AttachIframe("https://exchange.example",
		geom.Rect{X: 200, Y: sc.AdY, W: size.W, H: size.H})
	inner := outer.Root().AttachIframe("https://dsp.example",
		geom.Rect{X: 0, Y: 0, W: size.W, H: size.H})
	creative := inner.Root().AppendChild("creative", geom.Rect{X: 0, Y: 0, W: size.W, H: size.H})

	store := beacon.NewStore()
	rt := adtag.NewRuntime(page, creative, store, adtag.Impression{
		ID: "stress", CampaignID: "stress", Format: format,
	})
	if err := qtag.New(qtag.Config{}).Deploy(rt); err != nil {
		panic(fmt.Sprintf("stress: deploy: %v", err))
	}

	nominal := viewability.StandardCriteria(format)
	strict := viewability.Criteria{
		AreaFraction: nominal.AreaFraction + areaTolerance,
		Dwell:        nominal.Dwell + dwellTolerance,
	}
	lenient := viewability.Criteria{
		AreaFraction: nominal.AreaFraction - areaTolerance,
		Dwell:        nominal.Dwell - dwellTolerance,
	}
	oracles := []*viewability.Oracle{
		viewability.NewOracle(strict),
		viewability.NewOracle(nominal),
		viewability.NewOracle(lenient),
	}
	sampler := clock.Every(20*time.Millisecond, func() {
		frac := page.TrueVisibleFraction(creative)
		for _, o := range oracles {
			o.Observe(clock.Now(), frac)
		}
	})

	var adTab = page.Tab()
	var otherTab *browser.Tab
	for _, st := range sc.Steps {
		st := st
		clock.AfterFunc(st.At, func() { applyStep(st, b, w, page, adTab, &otherTab) })
	}
	clock.Advance(sc.Duration)
	sampler.Stop()

	res := RunResult{
		Scenario:     sc,
		TagInView:    store.InView("stress", beacon.SourceQTag) > 0,
		OracleStrict: oracles[0].FinishAt(clock.Now()),
		OracleNom:    oracles[1].FinishAt(clock.Now()),
		OracleLen:    oracles[2].FinishAt(clock.Now()),
	}
	switch {
	case res.OracleStrict != res.OracleLen:
		res.Verdict = Borderline
	case res.TagInView == res.OracleNom:
		res.Verdict = Agree
	default:
		res.Verdict = Mismatch
	}
	return res
}

func applyStep(st Step, b *browser.Browser, w *browser.Window, page *browser.Page,
	adTab *browser.Tab, otherTab **browser.Tab) {
	switch st.Op {
	case OpScroll:
		page.ScrollTo(geom.Point{Y: st.A})
	case OpResize:
		w.Resize(geom.Size{W: st.A, H: st.B})
	case OpMoveWindow:
		w.MoveTo(geom.Point{X: st.A, Y: st.B})
	case OpObscure:
		w.SetObscured(st.A > 0.5)
	case OpTabAway:
		if *otherTab == nil {
			*otherTab = w.NewTab()
		}
		w.ActivateTab(*otherTab)
	case OpTabBack:
		w.ActivateTab(adTab)
	case OpCPULoad:
		b.SetCPULoad(st.A)
	case OpBlur:
		w.Blur()
	}
}

// BatchResult aggregates a batch of differential runs.
type BatchResult struct {
	Runs       int
	Agree      int
	Borderline int
	Mismatch   int
	// Mismatches retains the failing scenarios for diagnosis.
	Mismatches []RunResult
}

// String implements fmt.Stringer.
func (b BatchResult) String() string {
	return fmt.Sprintf("stress: %d runs — %d agree, %d borderline, %d mismatches",
		b.Runs, b.Agree, b.Borderline, b.Mismatch)
}

// RunBatch generates and runs n random scenarios.
func RunBatch(n int, seed uint64) BatchResult {
	rng := simrand.New(seed)
	out := BatchResult{Runs: n}
	for i := 0; i < n; i++ {
		sc := Generate(rng.Fork(fmt.Sprintf("scenario-%d", i)))
		sc.Seed = seed
		res := Run(sc)
		switch res.Verdict {
		case Agree:
			out.Agree++
		case Borderline:
			out.Borderline++
		default:
			out.Mismatch++
			out.Mismatches = append(out.Mismatches, res)
		}
	}
	return out
}

package stress

import (
	"strings"
	"testing"

	"qtag/internal/simrand"
)

// TestNoMismatchesOnRobustScenarios is the package's headline assertion:
// across hundreds of random adversarial scenarios, the tag never
// contradicts a robust ground truth.
func TestNoMismatchesOnRobustScenarios(t *testing.T) {
	batch := RunBatch(300, 2019)
	if batch.Mismatch != 0 {
		for i, m := range batch.Mismatches {
			if i >= 3 {
				break
			}
			t.Logf("mismatch: tag=%v strict=%v nom=%v len=%v scenario=%+v",
				m.TagInView, m.OracleStrict, m.OracleNom, m.OracleLen, m.Scenario)
		}
		t.Fatalf("%s", batch)
	}
	if batch.Agree == 0 {
		t.Fatal("no scenarios agreed — generator degenerate")
	}
	// Borderline scenarios exist but must be a minority.
	if batch.Borderline > batch.Runs/3 {
		t.Errorf("too many borderline scenarios: %s", batch)
	}
	if !strings.Contains(batch.String(), "300 runs") {
		t.Errorf("String = %q", batch.String())
	}
}

func TestBatchDeterminism(t *testing.T) {
	a := RunBatch(40, 7)
	b := RunBatch(40, 7)
	if a.Agree != b.Agree || a.Borderline != b.Borderline || a.Mismatch != b.Mismatch {
		t.Errorf("same seed diverged: %s vs %s", a, b)
	}
}

func TestGenerateBounds(t *testing.T) {
	rng := simrand.New(3)
	for i := 0; i < 200; i++ {
		sc := Generate(rng)
		if sc.Duration < 4e9 || sc.Duration > 8e9 {
			t.Fatalf("duration out of range: %v", sc.Duration)
		}
		if len(sc.Steps) < 3 || len(sc.Steps) > 10 {
			t.Fatalf("step count out of range: %d", len(sc.Steps))
		}
		for _, st := range sc.Steps {
			if st.At <= 0 || st.At >= sc.Duration {
				t.Fatalf("step time out of range: %v of %v", st.At, sc.Duration)
			}
			if st.Op == OpCPULoad && st.A > 0.55 {
				t.Fatalf("CPU load outside the technique's envelope: %v", st.A)
			}
		}
	}
}

func TestOpStrings(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		if strings.HasPrefix(op.String(), "Op(") {
			t.Errorf("op %d unnamed", int(op))
		}
	}
	if Op(99).String() != "Op(99)" {
		t.Error("unknown op string wrong")
	}
	if Agree.String() != "agree" || Borderline.String() != "borderline" || Mismatch.String() != "MISMATCH" {
		t.Error("verdict strings wrong")
	}
}

func BenchmarkStressScenario(b *testing.B) {
	rng := simrand.New(1)
	for i := 0; i < b.N; i++ {
		Run(Generate(rng))
	}
}

package stress

import (
	"testing"
	"time"

	"qtag/internal/beacon"
	"qtag/internal/wal"
)

func TestGenEventsDeterministic(t *testing.T) {
	opts := LoadOptions{Seed: 42, Campaigns: 3, InViewRate: 0.5}.withDefaults()
	a := genEvents(2, 50, opts)
	b := genEvents(2, 50, opts)
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("quota not honored: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs between identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
	other := genEvents(3, 50, opts)
	if a[0].ImpressionID == other[0].ImpressionID {
		t.Fatal("different workers must emit disjoint impression ids")
	}
	for _, e := range a {
		if err := e.Validate(); err != nil {
			t.Fatalf("generated invalid event %+v: %v", e, err)
		}
	}
}

func TestRawQuantile(t *testing.T) {
	sorted := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := rawQuantile(sorted, 0.50); got != 5 {
		t.Fatalf("p50 = %v", got)
	}
	if got := rawQuantile(sorted, 0.99); got != 9 {
		t.Fatalf("p99 = %v", got)
	}
	if got := rawQuantile(nil, 0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
}

// TestRunLoadAgainstIngestServer is the end-to-end load harness check:
// an in-process server with the WAL on the request path (fsync=always,
// group commit) absorbs a concurrent mixed-traffic run with zero errors,
// and the store, the accepted counter, and a WAL replay all agree.
func TestRunLoadAgainstIngestServer(t *testing.T) {
	dir := t.TempDir()
	srv, err := StartIngestServer(IngestServerConfig{
		Shards:         8,
		WALDir:         dir,
		Fsync:          wal.FsyncAlways,
		GroupCommit:    true,
		SyncDurability: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	const events = 600
	rep, err := RunLoad(srv.URL, LoadOptions{
		Workers:   6,
		Events:    events,
		BatchSize: 3,
		Seed:      7,
	})
	if err != nil {
		t.Fatalf("load run reported error: %v (%s)", err, rep)
	}
	if rep.Errors != 0 || rep.Rejected != 0 {
		t.Fatalf("load run not clean: %s", rep)
	}
	if rep.Accepted != events {
		t.Fatalf("accepted %d, want %d", rep.Accepted, events)
	}
	if rep.Eps <= 0 || rep.P50 <= 0 || rep.P99 < rep.P50 || rep.MaxLatency < rep.P99 {
		t.Fatalf("implausible report: %s", rep)
	}
	if got := srv.Store.Len(); got != events {
		t.Fatalf("store holds %d events, want %d", got, events)
	}
	if srv.Journal.WAL().GroupCommits() == 0 {
		t.Fatal("load never exercised the group committer")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	restored := beacon.NewStore()
	if _, err := beacon.ReplayWALDir(dir, restored); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != events {
		t.Fatalf("WAL replay restored %d events, want %d", restored.Len(), events)
	}
}

// TestRunLoadAsyncQueuePath covers the qtag-server default shape: WAL
// behind a QueueSink, acks not waiting for fsync; Close drains the queue
// so nothing is lost.
func TestRunLoadAsyncQueuePath(t *testing.T) {
	dir := t.TempDir()
	srv, err := StartIngestServer(IngestServerConfig{
		Shards:      4,
		WALDir:      dir,
		Fsync:       wal.FsyncOnBatch,
		GroupCommit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunLoad(srv.URL, LoadOptions{Workers: 4, Events: 200, BatchSize: 5, Seed: 11})
	if err != nil {
		t.Fatalf("load run reported error: %v (%s)", err, rep)
	}
	if rep.Accepted != 200 || rep.Errors != 0 {
		t.Fatalf("load run not clean: %s", rep)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	restored := beacon.NewStore()
	if _, err := beacon.ReplayWALDir(dir, restored); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 200 {
		t.Fatalf("queue drain lost events: replay restored %d, want 200", restored.Len())
	}
}

// TestStartIngestServerNoWAL: memory-only servers must work too (the
// baseline the paper's §4 latency numbers are quoted against).
func TestStartIngestServerNoWAL(t *testing.T) {
	srv, err := StartIngestServer(IngestServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Journal != nil {
		t.Fatal("no WAL dir but a journal was opened")
	}
	if got := srv.Store.Shards(); got != beacon.DefaultStoreShards {
		t.Fatalf("default shards = %d, want %d", got, beacon.DefaultStoreShards)
	}
	rep, err := RunLoad(srv.URL, LoadOptions{Workers: 2, Events: 50, Seed: 3})
	if err != nil || rep.Accepted != 50 {
		t.Fatalf("memory-only load failed: %v (%s)", err, rep)
	}
}

package stress

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qtag/internal/admission"
	"qtag/internal/aggregate"
	"qtag/internal/beacon"
	"qtag/internal/cluster"
	"qtag/internal/detect"
	"qtag/internal/obs"
	"qtag/internal/report"
	"qtag/internal/simrand"
	"qtag/internal/wal"
)

// This file is the server-side counterpart of the tag stress harness:
// a concurrent load generator that drives the full HTTP collection
// server (WAL and all) with mixed beacon traffic and reports measured
// throughput and latency quantiles — the ingest path's speedup is
// measured, never claimed.

// LoadOptions tunes RunLoad. The zero value picks sensible defaults.
type LoadOptions struct {
	// Workers is the number of concurrent client goroutines. Default 8.
	Workers int
	// Events is the total number of beacon events to send across all
	// workers. Default 2000.
	Events int
	// BatchSize is the number of events per POST /v1/events request.
	// Default 1 — one beacon per request, the browser-tag shape.
	BatchSize int
	// Campaigns spreads impressions over this many campaign ids. Default 4.
	Campaigns int
	// InViewRate is the fraction of impressions that report in-view (a
	// fraction of those also report out-of-view). Default 0.6.
	InViewRate float64
	// Seed makes the generated traffic deterministic per worker.
	Seed uint64
	// TolerateShed counts 503/429 answers as shed load instead of
	// errors — the expected outcome when driving an admission-controlled
	// server past its limit. Shed requests are not retried; their events
	// simply never count as accepted.
	TolerateShed bool
	// Binary pre-serializes request bodies with the compact binary
	// beacon codec and posts them as application/x-qtag-binary — the
	// binary-codec rungs of the benchmark ladder.
	Binary bool
	// Client overrides the HTTP client (default: pooled transport sized
	// to Workers).
	Client *http.Client
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.Events <= 0 {
		o.Events = 2000
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 1
	}
	if o.Campaigns <= 0 {
		o.Campaigns = 4
	}
	if o.InViewRate <= 0 {
		o.InViewRate = 0.6
	}
	return o
}

// LoadReport is the measured outcome of one load run.
type LoadReport struct {
	Workers    int           `json:"workers"`
	Events     int           `json:"events"`
	Requests   int64         `json:"requests"`
	Accepted   int64         `json:"accepted"`
	Rejected   int64         `json:"rejected"`
	Shed       int64         `json:"shed,omitempty"` // 503/429 answers under TolerateShed
	Errors     int64         `json:"errors"`
	Duration   time.Duration `json:"duration_ns"`
	Eps        float64       `json:"throughput_eps"` // accepted events per second
	P50        time.Duration `json:"p50_ns"`
	P90        time.Duration `json:"p90_ns"`
	P99        time.Duration `json:"p99_ns"`
	MaxLatency time.Duration `json:"max_ns"`
}

// String implements fmt.Stringer.
func (r LoadReport) String() string {
	return fmt.Sprintf("load: %d events / %d reqs over %d workers in %v — %.0f ev/s, p50=%v p90=%v p99=%v max=%v (accepted=%d rejected=%d shed=%d errors=%d)",
		r.Events, r.Requests, r.Workers, r.Duration.Round(time.Millisecond), r.Eps,
		r.P50.Round(time.Microsecond), r.P90.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.MaxLatency.Round(time.Microsecond),
		r.Accepted, r.Rejected, r.Shed, r.Errors)
}

// genEvents produces one worker's deterministic mixed traffic: for each
// impression a served event, a loaded check-in, then with probability
// InViewRate an in-view (and half the time an out-of-view after it) —
// the event lifecycle of §3 under random slicing attributes.
func genEvents(worker int, quota int, opts LoadOptions) []beacon.Event {
	rng := simrand.New(opts.Seed).Fork(fmt.Sprintf("load-worker-%d", worker))
	oses := []string{"android", "ios", "windows", "macos"}
	sites := []string{"news", "blog", "sports", "video"}
	out := make([]beacon.Event, 0, quota)
	at := time.Unix(1500000000, 0).UTC()
	for imp := 0; len(out) < quota; imp++ {
		id := fmt.Sprintf("load-w%d-i%06d", worker, imp)
		camp := fmt.Sprintf("camp-%d", rng.Intn(opts.Campaigns))
		meta := beacon.Meta{
			OS:       oses[rng.Intn(len(oses))],
			SiteType: sites[rng.Intn(len(sites))],
		}
		out = append(out, beacon.Event{
			ImpressionID: id, CampaignID: camp, Type: beacon.EventServed, At: at, Meta: meta,
		})
		out = append(out, beacon.Event{
			ImpressionID: id, CampaignID: camp, Source: beacon.SourceQTag,
			Type: beacon.EventLoaded, At: at.Add(time.Second), Meta: meta,
		})
		if rng.Bool(opts.InViewRate) {
			out = append(out, beacon.Event{
				ImpressionID: id, CampaignID: camp, Source: beacon.SourceQTag,
				Type: beacon.EventInView, At: at.Add(2 * time.Second), Meta: meta,
			})
			if rng.Bool(0.5) {
				out = append(out, beacon.Event{
					ImpressionID: id, CampaignID: camp, Source: beacon.SourceQTag,
					Type: beacon.EventOutOfView, At: at.Add(3 * time.Second), Meta: meta,
				})
			}
		}
	}
	return out[:quota]
}

// RunLoad drives baseURL's POST /v1/events with opts.Workers concurrent
// goroutines of mixed traffic and returns measured throughput and
// latency quantiles. Latencies are collected raw per worker and merged,
// so the quantiles are exact, not bucket-interpolated.
func RunLoad(baseURL string, opts LoadOptions) (LoadReport, error) {
	opts = opts.withDefaults()
	client := opts.Client
	if client == nil {
		client = &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        opts.Workers * 2,
				MaxIdleConnsPerHost: opts.Workers * 2,
			},
		}
	}
	url := baseURL + "/v1/events"

	var requests, accepted, rejected, shed, httpErrs atomic.Int64
	latencies := make([][]time.Duration, opts.Workers)
	var wg sync.WaitGroup
	var firstErr atomic.Value

	// Pre-serialize every request body before the clock starts: the run
	// measures the server's ingest path, not the generator's JSON
	// marshaling (which would otherwise compete for the same cores).
	bodies := make([][][]byte, opts.Workers)
	for wkr := 0; wkr < opts.Workers; wkr++ {
		quota := opts.Events / opts.Workers
		if wkr < opts.Events%opts.Workers {
			quota++
		}
		if quota == 0 {
			continue
		}
		events := genEvents(wkr, quota, opts)
		for off := 0; off < len(events); off += opts.BatchSize {
			end := min(off+opts.BatchSize, len(events))
			var body []byte
			switch {
			case opts.Binary:
				body = beacon.AppendBinaryEvents(nil, events[off:end])
			case end-off == 1:
				body, _ = json.Marshal(events[off])
			default:
				body, _ = json.Marshal(events[off:end])
			}
			bodies[wkr] = append(bodies[wkr], body)
		}
	}
	contentType := "application/json"
	if opts.Binary {
		contentType = beacon.BinaryContentType
	}

	start := time.Now()
	for wkr := 0; wkr < opts.Workers; wkr++ {
		if len(bodies[wkr]) == 0 {
			continue
		}
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			lats := make([]time.Duration, 0, len(bodies[wkr]))
			for _, body := range bodies[wkr] {
				t0 := time.Now()
				resp, err := client.Post(url, contentType, bytes.NewReader(body))
				lats = append(lats, time.Since(t0))
				requests.Add(1)
				if err != nil {
					httpErrs.Add(1)
					firstErr.CompareAndSwap(nil, err)
					continue
				}
				if opts.TolerateShed && (resp.StatusCode == http.StatusServiceUnavailable ||
					resp.StatusCode == http.StatusTooManyRequests) {
					resp.Body.Close()
					shed.Add(1)
					continue
				}
				var ir struct {
					Accepted int `json:"accepted"`
					Rejected int `json:"rejected"`
				}
				jerr := json.NewDecoder(resp.Body).Decode(&ir)
				resp.Body.Close()
				if jerr != nil || resp.StatusCode >= 500 {
					httpErrs.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Errorf("status %d (decode: %v)", resp.StatusCode, jerr))
					continue
				}
				accepted.Add(int64(ir.Accepted))
				rejected.Add(int64(ir.Rejected))
			}
			latencies[wkr] = lats
		}(wkr)
	}
	wg.Wait()
	elapsed := time.Since(start)

	merged := make([]time.Duration, 0, opts.Events)
	for _, l := range latencies {
		merged = append(merged, l...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
	rep := LoadReport{
		Workers:  opts.Workers,
		Events:   opts.Events,
		Requests: requests.Load(),
		Accepted: accepted.Load(),
		Rejected: rejected.Load(),
		Shed:     shed.Load(),
		Errors:   httpErrs.Load(),
		Duration: elapsed,
	}
	if elapsed > 0 {
		rep.Eps = float64(rep.Accepted) / elapsed.Seconds()
	}
	if len(merged) > 0 {
		rep.P50 = rawQuantile(merged, 0.50)
		rep.P90 = rawQuantile(merged, 0.90)
		rep.P99 = rawQuantile(merged, 0.99)
		rep.MaxLatency = merged[len(merged)-1]
	}
	var err error
	if e := firstErr.Load(); e != nil {
		err = e.(error)
	}
	return rep, err
}

// rawQuantile reads the q-quantile from a sorted latency slice.
func rawQuantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// IngestServerConfig describes an in-process collection server for load
// runs: the sharded store, the WAL durability backend and the group
// committer — the full qtag-server ingest stack minus flag parsing.
type IngestServerConfig struct {
	// Shards is the store shard count (power of two; default 16).
	Shards int
	// WALDir enables crash-safe durability; empty disables the WAL.
	WALDir string
	// Fsync is the WAL durability policy (wal.FsyncAlways for the
	// benchmark contract).
	Fsync wal.FsyncPolicy
	// GroupCommit coalesces concurrent WAL appends into shared fsyncs.
	GroupCommit bool
	// GroupCommitMaxBatch caps records per group commit (default 256).
	GroupCommitMaxBatch int
	// GroupCommitMaxWait holds small groups open to grow them (default 0).
	GroupCommitMaxWait time.Duration
	// SyncDurability puts the WAL on the request path: a POST is acked
	// only after its events are fsynced (Tee store+journal). When false
	// the WAL drains asynchronously through a QueueSink, the qtag-server
	// default.
	SyncDurability bool
	// ReportTTL is the aggregation layer's impression-state TTL (0 = the
	// aggregate default, <0 disables eviction).
	ReportTTL time.Duration
	// ReportSweepEvery runs a background eviction sweep at this cadence
	// (0 = no sweeper; call Aggregate.Sweep yourself).
	ReportSweepEvery time.Duration
	// ClusterSelf / ClusterPeers / ClusterHandoffDir layer a cluster
	// router over the sink: events whose ring owner is a peer forward
	// over HTTP instead of landing locally. Used by the forwarding rung
	// of the benchmark ladder to price peer routing.
	ClusterSelf       string
	ClusterPeers      map[string]string
	ClusterHandoffDir string
	// ClusterBinary forwards peer-owned beacons (and hint-drain replays)
	// with the binary codec instead of JSON.
	ClusterBinary bool
	// TraceSample > 0 enables distributed tracing on the ingest path at
	// that head sampling rate — the tracing rungs of the benchmark
	// ladder price its overhead at 1% and 100%.
	TraceSample float64
	// TraceBuffer is the span ring capacity (obs.DefaultSpanBuffer when
	// zero).
	TraceBuffer int
	// Admission fronts the server with the adaptive admission controller
	// (the qtag-server production wiring); drive it with
	// LoadOptions.TolerateShed to measure goodput under overload.
	Admission bool
	// AdmissionLimiter tunes the controller when Admission is set; zero
	// fields take the admission package defaults.
	AdmissionLimiter admission.LimiterConfig
	// Detect attaches the streaming fraud layer on both store hooks
	// (first-seen + duplicate) and serves its scores on GET /report —
	// the qtag-server -detect wiring. The detection harness and chaos
	// suites run through exactly this path.
	Detect bool
	// DetectOptions tunes the detector when Detect is set; zero fields
	// take the detect package defaults. The Sweep cadence piggybacks
	// on ReportSweepEvery.
	DetectOptions detect.Options
}

// IngestServer is a live in-process collection server.
type IngestServer struct {
	URL       string
	Store     *beacon.Store
	Journal   *beacon.WALJournal
	Server    *beacon.Server
	Aggregate *aggregate.Aggregator
	Detect    *detect.Detector      // non-nil when cfg.Detect
	Spans     *obs.SpanStore        // non-nil when TraceSample > 0
	Admission *admission.Controller // non-nil when cfg.Admission

	httpSrv   *http.Server
	queue     *beacon.QueueSink
	node      *cluster.Node
	stopSweep chan struct{}
}

// StartIngestServer builds the configured ingest stack and serves it on
// a loopback listener. Close releases everything.
func StartIngestServer(cfg IngestServerConfig) (*IngestServer, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = beacon.DefaultStoreShards
	}
	store := beacon.NewStoreWithShards(cfg.Shards)
	is := &IngestServer{Store: store}
	// The aggregation observer attaches before any event can reach the
	// store — including WAL replay below — so /report rebuilds with the
	// store on boot, exactly as qtag-server wires it.
	is.Aggregate = aggregate.New(aggregate.Options{Shards: cfg.Shards, TTL: cfg.ReportTTL})
	store.AddObserver(is.Aggregate.Observe)
	if cfg.Detect {
		// Both detection hooks also attach before any event or WAL
		// replay reaches the store, so fraud scores rebuild on boot
		// alongside the aggregates.
		opts := cfg.DetectOptions
		if opts.Shards == 0 {
			opts.Shards = cfg.Shards
		}
		is.Detect = detect.New(opts)
		store.AddObserver(is.Detect.Observe)
		store.AddDupObserver(is.Detect.ObserveDup)
	}
	var sink beacon.Sink = store
	if cfg.WALDir != "" {
		wj, _, err := beacon.OpenDurable(wal.Options{
			Dir:                 cfg.WALDir,
			Fsync:               cfg.Fsync,
			GroupCommit:         cfg.GroupCommit,
			GroupCommitMaxBatch: cfg.GroupCommitMaxBatch,
			GroupCommitMaxWait:  cfg.GroupCommitMaxWait,
		}, store)
		if err != nil {
			return nil, err
		}
		is.Journal = wj
		if cfg.SyncDurability {
			sink = beacon.Tee(store, wj)
		} else {
			is.queue = beacon.NewQueueSink(wj, beacon.QueueOptions{})
			sink = beacon.Tee(store, is.queue)
		}
	}
	var tracer *obs.Tracer
	if cfg.TraceSample > 0 {
		buf := cfg.TraceBuffer
		if buf <= 0 {
			buf = obs.DefaultSpanBuffer
		}
		name := cfg.ClusterSelf
		if name == "" {
			name = "bench"
		}
		is.Spans = obs.NewSpanStore(buf)
		tracer = obs.NewTracer(obs.TracerConfig{
			Node:       name,
			SampleRate: cfg.TraceSample,
			Store:      is.Spans,
		})
	}
	if len(cfg.ClusterPeers) > 0 {
		node, err := cluster.NewNode(cluster.Config{
			Self:       cfg.ClusterSelf,
			Peers:      cfg.ClusterPeers,
			Local:      sink,
			HandoffDir: cfg.ClusterHandoffDir,
			Binary:     cfg.ClusterBinary,
			Tracer:     tracer,
		})
		if err != nil {
			if is.Journal != nil {
				is.Journal.Close()
			}
			return nil, err
		}
		is.node = node
		node.Start()
		sink = node
	}
	is.Server = beacon.NewServerWithSink(store, sink)
	if tracer != nil {
		is.Server.SetTracer(tracer)
	}
	is.Server.Mount("GET /report", report.HandlerWithDetect(is.Aggregate, is.Detect, nil))
	is.Aggregate.RegisterMetrics(is.Server.Metrics())
	if is.Detect != nil {
		is.Detect.RegisterMetrics(is.Server.Metrics())
	}
	if is.Journal != nil {
		is.Journal.RegisterMetrics(is.Server.Metrics())
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		if is.Journal != nil {
			is.Journal.Close()
		}
		return nil, err
	}
	if cfg.ReportSweepEvery > 0 {
		is.stopSweep = make(chan struct{})
		go func() {
			ticker := time.NewTicker(cfg.ReportSweepEvery)
			defer ticker.Stop()
			for {
				select {
				case <-is.stopSweep:
					return
				case now := <-ticker.C:
					is.Aggregate.Sweep(now)
					if is.Detect != nil {
						is.Detect.Sweep(now)
					}
				}
			}
		}()
	}
	handler := http.Handler(is.Server)
	if cfg.Admission {
		is.Admission = admission.NewController(admission.Config{Limiter: cfg.AdmissionLimiter})
		is.Admission.RegisterMetrics(is.Server.Metrics())
		handler = is.Admission.Middleware(is.Server)
	}
	is.URL = "http://" + ln.Addr().String()
	is.httpSrv = &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if serr := is.httpSrv.Serve(ln); serr != nil && !errors.Is(serr, http.ErrServerClosed) {
			_ = serr // listener closed under us; Close reports what matters
		}
	}()
	return is, nil
}

// Close drains and shuts everything down: HTTP server, sweeper, queue,
// WAL.
func (s *IngestServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := s.httpSrv.Shutdown(ctx)
	if s.node != nil {
		if nerr := s.node.Close(); err == nil {
			err = nerr
		}
	}
	if s.stopSweep != nil {
		close(s.stopSweep)
	}
	if s.queue != nil {
		if qerr := s.queue.Close(ctx); err == nil {
			err = qerr
		}
	}
	if s.Journal != nil {
		if jerr := s.Journal.Close(); err == nil {
			err = jerr
		}
	}
	return err
}

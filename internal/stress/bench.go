package stress

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"qtag/internal/admission"
	"qtag/internal/beacon"
	"qtag/internal/wal"
)

// BenchOptions configures RunBenchLadder.
type BenchOptions struct {
	// Workers / Events / BatchSize are passed to every RunLoad call.
	Workers   int
	Events    int
	BatchSize int
	// Reps runs each configuration this many times and reports the best
	// run — peak capability under identical conditions, insulated from
	// scheduler noise on shared hardware. Default 1.
	Reps int
	// GroupCommitMaxBatch / GroupCommitMaxWait tune the committer in the
	// group-commit configurations.
	GroupCommitMaxBatch int
	GroupCommitMaxWait  time.Duration
	// MinSpeedup16 fails the ladder when the 16-shard row's throughput is
	// below this multiple of the 1-shard row (0 = report only).
	MinSpeedup16 float64
	// MinBinarySpeedup fails the ladder when the binary 16-shard row's
	// throughput is below this multiple of the JSON 1-shard seed row
	// (0 = report only). This is the codec acceptance bar: the compact
	// wire format plus shard scaling must clear it together.
	MinBinarySpeedup float64
	// Out receives one progress line per configuration (nil = silent).
	Out io.Writer
}

// BenchEntry is one row of the ladder report.
type BenchEntry struct {
	Shards      int     `json:"shards"`
	GroupCommit bool    `json:"group_commit"`
	Forwarding  bool    `json:"forwarding,omitempty"`
	TraceSample float64 `json:"trace_sample,omitempty"`
	// Overload marks the admission rung: 10× the ladder's standard
	// concurrency against an admission-controlled server whose limit
	// ceiling is pinned at the standard concurrency. Eps is then
	// goodput (accepted work), and ShedRate the fraction of requests
	// answered 503.
	Overload bool    `json:"overload,omitempty"`
	ShedRate float64 `json:"shed_rate,omitempty"`
	// Binary marks the rungs that post the compact binary beacon codec
	// instead of JSON.
	Binary bool    `json:"binary,omitempty"`
	Eps    float64 `json:"throughput_eps"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	// AllocsPerEvent is the whole-process heap-allocation count divided
	// by accepted events for the best run of this rung — load generator
	// and in-process server combined, so it is a coarse end-to-end
	// number, not the per-decode figure (the codec microbenches report
	// that exactly).
	AllocsPerEvent float64 `json:"allocs_per_event"`
	Accepted       int64   `json:"accepted"`
	DurationSec    float64 `json:"duration_sec"`
}

// BenchConfig records the knobs a report was measured under.
type BenchConfig struct {
	Workers   int    `json:"workers"`
	Events    int    `json:"events"`
	BatchSize int    `json:"batch_size"`
	Fsync     string `json:"fsync"`
	SyncDur   bool   `json:"sync_durability"`
	Reps      int    `json:"reps"`
}

// BenchLadderReport is the full shard-scaling measurement.
type BenchLadderReport struct {
	Config       BenchConfig  `json:"config"`
	Entries      []BenchEntry `json:"entries"`
	Speedup4Vs1  float64      `json:"speedup_4_vs_1"`
	Speedup16Vs1 float64      `json:"speedup_16_vs_1"`
	// TraceOverhead1Pct / TraceOverhead100Pct are the fractional
	// throughput cost of distributed tracing at 1% and 100% head
	// sampling versus the identical untraced 16-shard rung (0.03 =
	// 3% slower). Negative values are run-to-run noise.
	TraceOverhead1Pct   float64 `json:"trace_overhead_1pct"`
	TraceOverhead100Pct float64 `json:"trace_overhead_100pct"`
	// BinarySpeedup1Vs1 / BinarySpeedup16Vs1 compare the binary-codec
	// rungs against the JSON 1-shard seed row: the first isolates the
	// codec (same single-shard stack, different wire format), the second
	// is codec plus shard scaling — the acceptance number gated by
	// MinBinarySpeedup. BinaryVsJSON16 compares the binary 16-shard rung
	// against its JSON twin, isolating the codec at scale.
	BinarySpeedup1Vs1  float64 `json:"binary_speedup_1_vs_1"`
	BinarySpeedup16Vs1 float64 `json:"binary_speedup_16_vs_1"`
	BinaryVsJSON16     float64 `json:"binary_vs_json_16"`
	// Codec holds the beacon-codec microbenchmarks (testing.Benchmark
	// runs, -benchmem style) published next to the ladder so allocation
	// regressions are visible in the same artifact as throughput.
	Codec []CodecBenchEntry `json:"codec"`
}

// CodecBenchEntry is one codec microbenchmark row.
type CodecBenchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// LadderRungs is the number of rows RunBenchLadder measures; consumers
// (the CLI, the regression gate) use it to detect a truncated report.
const LadderRungs = 9

// RunBenchLadder measures ingest throughput with the WAL on the request
// path (fsync=always, sync durability) across the shard/group-commit
// ladder: the 1-shard no-group-commit row is the seed per-record-fsync
// behavior, the 4- and 16-shard group-commit rows are the scaled ingest
// path, and the forwarding row repeats the 16-shard configuration with
// a two-node cluster in front (about half the events forward to a peer
// before acking) to price the peer-routing overhead. The tracing rows
// repeat the 16-shard configuration with distributed tracing at 1% and
// 100% head sampling to price the observability tax, and the overload
// row drives the admission-controlled stack at 10× concurrency to price
// goodput and shed rate past the knee. Every row uses a fresh WAL
// directory and a fresh in-process server; numbers are measured, never
// modeled.
func RunBenchLadder(opts BenchOptions) (BenchLadderReport, error) {
	var rep BenchLadderReport
	o := LoadOptions{Workers: opts.Workers, Events: opts.Events, BatchSize: opts.BatchSize, Seed: 2019}.withDefaults()
	reps := opts.Reps
	if reps < 1 {
		reps = 1
	}
	out := opts.Out
	if out == nil {
		out = io.Discard
	}
	rep.Config = BenchConfig{
		Workers:   o.Workers,
		Events:    o.Events,
		BatchSize: o.BatchSize,
		Fsync:     "always",
		SyncDur:   true,
		Reps:      reps,
	}

	tmpRoot, err := os.MkdirTemp("", "qtag-bench-")
	if err != nil {
		return rep, err
	}
	defer os.RemoveAll(tmpRoot)

	cases := []struct {
		shards     int
		gc         bool
		forwarding bool
		trace      float64
		overload   bool
		binary     bool
	}{
		{1, false, false, 0, false, false}, // the seed: single lock, one fsync per record
		{4, true, false, 0, false, false},
		{16, true, false, 0, false, false},
		// The cluster tax: same stack, but the loaded node owns only
		// ~half the ring — the rest forwards over HTTP to a second
		// full-durability node before acking.
		{16, true, true, 0, false, false},
		// The tracing tax: the scaled ingest rung with distributed
		// tracing enabled at production (1%) and worst-case (100%)
		// head sampling — every request roots a span either way; the
		// rate decides how many are recorded into the ring.
		{16, true, false, 0.01, false, false},
		{16, true, false, 1.0, false, false},
		// The overload rung (informational): the scaled configuration
		// fronted by the admission controller, driven at 10× the ladder's
		// standard concurrency with the concurrency ceiling pinned at the
		// standard worker count. Prices goodput, shed rate and p99 under a
		// sustained ramp instead of pretending overload cannot happen.
		{16, true, false, 0, true, false},
		// The codec rungs: the seed row and the scaled row repeated with
		// the compact binary wire format. Binary-vs-1-shard-JSON is the
		// acceptance number (MinBinarySpeedup); binary-vs-16-shard-JSON
		// isolates the codec itself at scale.
		{1, false, false, 0, false, true},
		{16, true, false, 0, false, true},
	}
	if len(cases) != LadderRungs {
		return rep, fmt.Errorf("ladder defines %d rungs, LadderRungs says %d", len(cases), LadderRungs)
	}
	for i, c := range cases {
		var best LoadReport
		var bestAllocs float64
		for r := 0; r < reps; r++ {
			base := IngestServerConfig{
				Shards:              c.shards,
				WALDir:              filepath.Join(tmpRoot, fmt.Sprintf("wal-%d-%d", i, r)),
				Fsync:               wal.FsyncAlways,
				GroupCommit:         c.gc,
				GroupCommitMaxBatch: opts.GroupCommitMaxBatch,
				GroupCommitMaxWait:  opts.GroupCommitMaxWait,
				SyncDurability:      true,
				TraceSample:         c.trace,
			}
			if c.overload {
				base.Admission = true
				// Pin the ceiling at the standard worker count so the 10×
				// ramp below is guaranteed past the knee.
				base.AdmissionLimiter = admission.LimiterConfig{
					MinLimit:     o.Workers / 2,
					MaxLimit:     o.Workers,
					InitialLimit: o.Workers,
				}
			}
			var peer *IngestServer
			if c.forwarding {
				peerCfg := base
				peerCfg.WALDir = filepath.Join(tmpRoot, fmt.Sprintf("wal-%d-%d-peer", i, r))
				p, err := StartIngestServer(peerCfg)
				if err != nil {
					return rep, err
				}
				peer = p
				base.ClusterSelf = "bench-a"
				base.ClusterPeers = map[string]string{"bench-b": peer.URL}
				base.ClusterHandoffDir = filepath.Join(tmpRoot, fmt.Sprintf("hints-%d-%d", i, r))
			}
			srv, err := StartIngestServer(base)
			if err != nil {
				if peer != nil {
					peer.Close()
				}
				return rep, err
			}
			lo := LoadOptions{
				Workers: o.Workers, Events: o.Events, BatchSize: o.BatchSize, Seed: 2019,
				Binary: c.binary,
			}
			if c.overload {
				lo.Workers = o.Workers * 10
				lo.TolerateShed = true
			}
			var msBefore, msAfter runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&msBefore)
			lr, err := RunLoad(srv.URL, lo)
			runtime.ReadMemStats(&msAfter)
			cerr := srv.Close()
			if peer != nil {
				if perr := peer.Close(); cerr == nil {
					cerr = perr
				}
			}
			if err != nil {
				return rep, fmt.Errorf("shards=%d: %w", c.shards, err)
			}
			if cerr != nil {
				return rep, fmt.Errorf("shards=%d close: %w", c.shards, cerr)
			}
			// The overload rung sheds by design, so accepted < Events is
			// its expected outcome — but it must still accept something
			// and stay error-free.
			if lr.Errors > 0 {
				return rep, fmt.Errorf("shards=%d: dirty run: %s", c.shards, lr)
			}
			if c.overload {
				if lr.Accepted == 0 {
					return rep, fmt.Errorf("overload rung accepted nothing: %s", lr)
				}
			} else if lr.Accepted != int64(o.Events) {
				return rep, fmt.Errorf("shards=%d: dirty run: %s", c.shards, lr)
			}
			if lr.Eps > best.Eps {
				best = lr
				if lr.Accepted > 0 {
					bestAllocs = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(lr.Accepted)
				}
			}
		}
		fmt.Fprintf(out, "shards=%-2d group-commit=%-5v forwarding=%-5v trace=%-4v overload=%-5v binary=%-5v  %s\n",
			c.shards, c.gc, c.forwarding, c.trace, c.overload, c.binary, best)
		entryShedRate := 0.0
		if best.Requests > 0 {
			entryShedRate = float64(best.Shed) / float64(best.Requests)
		}
		rep.Entries = append(rep.Entries, BenchEntry{
			Shards:         c.shards,
			GroupCommit:    c.gc,
			Forwarding:     c.forwarding,
			TraceSample:    c.trace,
			Overload:       c.overload,
			Binary:         c.binary,
			ShedRate:       entryShedRate,
			Eps:            best.Eps,
			P50Ms:          float64(best.P50) / float64(time.Millisecond),
			P99Ms:          float64(best.P99) / float64(time.Millisecond),
			AllocsPerEvent: bestAllocs,
			Accepted:       best.Accepted,
			DurationSec:    best.Duration.Seconds(),
		})
	}
	if base := rep.Entries[0].Eps; base > 0 {
		rep.Speedup4Vs1 = rep.Entries[1].Eps / base
		rep.Speedup16Vs1 = rep.Entries[2].Eps / base
	}
	// Price tracing against the identical untraced rung, and the binary
	// codec against its JSON twins.
	var untraced, traced1, traced100, binary1, binary16 float64
	for _, e := range rep.Entries {
		if e.Binary {
			switch e.Shards {
			case 1:
				binary1 = e.Eps
			case 16:
				binary16 = e.Eps
			}
			continue
		}
		if e.Shards == 16 && e.GroupCommit && !e.Forwarding && !e.Overload {
			switch e.TraceSample {
			case 0:
				untraced = e.Eps
			case 0.01:
				traced1 = e.Eps
			case 1.0:
				traced100 = e.Eps
			}
		}
	}
	if untraced > 0 {
		if traced1 > 0 {
			rep.TraceOverhead1Pct = 1 - traced1/untraced
		}
		if traced100 > 0 {
			rep.TraceOverhead100Pct = 1 - traced100/untraced
		}
	}
	fmt.Fprintf(out, "speedup: 4 shards %.2fx, 16 shards %.2fx vs 1 shard\n",
		rep.Speedup4Vs1, rep.Speedup16Vs1)
	fmt.Fprintf(out, "tracing overhead vs untraced 16-shard rung: %.1f%% at 1%% sampling, %.1f%% at 100%%\n",
		rep.TraceOverhead1Pct*100, rep.TraceOverhead100Pct*100)
	if base := rep.Entries[0].Eps; base > 0 {
		rep.BinarySpeedup1Vs1 = binary1 / base
		rep.BinarySpeedup16Vs1 = binary16 / base
	}
	if untraced > 0 {
		rep.BinaryVsJSON16 = binary16 / untraced
	}
	fmt.Fprintf(out, "binary codec: %.2fx vs JSON 1-shard (1 shard), %.2fx vs JSON 1-shard (16 shards), %.2fx vs JSON 16-shard\n",
		rep.BinarySpeedup1Vs1, rep.BinarySpeedup16Vs1, rep.BinaryVsJSON16)
	rep.Codec = MeasureCodec()
	for _, cb := range rep.Codec {
		fmt.Fprintf(out, "codec %-24s %10.1f ns/op %6d B/op %4d allocs/op\n",
			cb.Name, cb.NsPerOp, cb.BytesPerOp, cb.AllocsPerOp)
	}
	if opts.MinSpeedup16 > 0 && rep.Speedup16Vs1 < opts.MinSpeedup16 {
		return rep, fmt.Errorf("16-shard speedup %.2fx below the %.1fx floor",
			rep.Speedup16Vs1, opts.MinSpeedup16)
	}
	if opts.MinBinarySpeedup > 0 && rep.BinarySpeedup16Vs1 < opts.MinBinarySpeedup {
		return rep, fmt.Errorf("binary 16-shard speedup %.2fx over the JSON seed row is below the %.1fx floor",
			rep.BinarySpeedup16Vs1, opts.MinBinarySpeedup)
	}
	return rep, nil
}

// MeasureCodec runs the beacon-codec microbenchmarks in-process via
// testing.Benchmark and returns -benchmem style rows: the exact
// per-operation allocation counts the ladder's coarse AllocsPerEvent
// cannot give. The decode row uses the pooled alias decoder on a warm
// pool — the steady-state ingest path — and is expected to report zero
// allocations per op.
func MeasureCodec() []CodecBenchEntry {
	events := genEvents(0, 64, LoadOptions{Seed: 2019}.withDefaults())
	frame := beacon.AppendBinaryEvents(nil, events)
	single := beacon.AppendBinaryEvent(nil, events[0])
	rows := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"binary-encode-batch", func(b *testing.B) {
			var buf []byte
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf = beacon.AppendBinaryEvents(buf[:0], events)
			}
		}},
		{"binary-decode-batch", func(b *testing.B) {
			var dec beacon.BatchDecoder
			if _, err := dec.Decode(frame); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dec.Decode(frame); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"binary-decode-event", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := beacon.DecodeBinaryEvent(single); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"json-decode-batch", func(b *testing.B) {
			body, err := json.Marshal(events)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var out []beacon.Event
				if err := json.Unmarshal(body, &out); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
	out := make([]CodecBenchEntry, 0, len(rows))
	for _, r := range rows {
		res := testing.Benchmark(r.fn)
		out = append(out, CodecBenchEntry{
			Name:        r.name,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
	}
	return out
}

// WriteJSON writes the report, indented, to path.
func (r BenchLadderReport) WriteJSON(path string) error {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

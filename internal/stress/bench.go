package stress

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"qtag/internal/admission"
	"qtag/internal/wal"
)

// BenchOptions configures RunBenchLadder.
type BenchOptions struct {
	// Workers / Events / BatchSize are passed to every RunLoad call.
	Workers   int
	Events    int
	BatchSize int
	// Reps runs each configuration this many times and reports the best
	// run — peak capability under identical conditions, insulated from
	// scheduler noise on shared hardware. Default 1.
	Reps int
	// GroupCommitMaxBatch / GroupCommitMaxWait tune the committer in the
	// group-commit configurations.
	GroupCommitMaxBatch int
	GroupCommitMaxWait  time.Duration
	// MinSpeedup16 fails the ladder when the 16-shard row's throughput is
	// below this multiple of the 1-shard row (0 = report only).
	MinSpeedup16 float64
	// Out receives one progress line per configuration (nil = silent).
	Out io.Writer
}

// BenchEntry is one row of the ladder report.
type BenchEntry struct {
	Shards      int     `json:"shards"`
	GroupCommit bool    `json:"group_commit"`
	Forwarding  bool    `json:"forwarding,omitempty"`
	TraceSample float64 `json:"trace_sample,omitempty"`
	// Overload marks the admission rung: 10× the ladder's standard
	// concurrency against an admission-controlled server whose limit
	// ceiling is pinned at the standard concurrency. Eps is then
	// goodput (accepted work), and ShedRate the fraction of requests
	// answered 503.
	Overload    bool    `json:"overload,omitempty"`
	ShedRate    float64 `json:"shed_rate,omitempty"`
	Eps         float64 `json:"throughput_eps"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	Accepted    int64   `json:"accepted"`
	DurationSec float64 `json:"duration_sec"`
}

// BenchConfig records the knobs a report was measured under.
type BenchConfig struct {
	Workers   int    `json:"workers"`
	Events    int    `json:"events"`
	BatchSize int    `json:"batch_size"`
	Fsync     string `json:"fsync"`
	SyncDur   bool   `json:"sync_durability"`
	Reps      int    `json:"reps"`
}

// BenchLadderReport is the full shard-scaling measurement.
type BenchLadderReport struct {
	Config       BenchConfig  `json:"config"`
	Entries      []BenchEntry `json:"entries"`
	Speedup4Vs1  float64      `json:"speedup_4_vs_1"`
	Speedup16Vs1 float64      `json:"speedup_16_vs_1"`
	// TraceOverhead1Pct / TraceOverhead100Pct are the fractional
	// throughput cost of distributed tracing at 1% and 100% head
	// sampling versus the identical untraced 16-shard rung (0.03 =
	// 3% slower). Negative values are run-to-run noise.
	TraceOverhead1Pct   float64 `json:"trace_overhead_1pct"`
	TraceOverhead100Pct float64 `json:"trace_overhead_100pct"`
}

// RunBenchLadder measures ingest throughput with the WAL on the request
// path (fsync=always, sync durability) across the shard/group-commit
// ladder: the 1-shard no-group-commit row is the seed per-record-fsync
// behavior, the 4- and 16-shard group-commit rows are the scaled ingest
// path, and the forwarding row repeats the 16-shard configuration with
// a two-node cluster in front (about half the events forward to a peer
// before acking) to price the peer-routing overhead. The tracing rows
// repeat the 16-shard configuration with distributed tracing at 1% and
// 100% head sampling to price the observability tax, and the overload
// row drives the admission-controlled stack at 10× concurrency to price
// goodput and shed rate past the knee. Every row uses a fresh WAL
// directory and a fresh in-process server; numbers are measured, never
// modeled.
func RunBenchLadder(opts BenchOptions) (BenchLadderReport, error) {
	var rep BenchLadderReport
	o := LoadOptions{Workers: opts.Workers, Events: opts.Events, BatchSize: opts.BatchSize, Seed: 2019}.withDefaults()
	reps := opts.Reps
	if reps < 1 {
		reps = 1
	}
	out := opts.Out
	if out == nil {
		out = io.Discard
	}
	rep.Config = BenchConfig{
		Workers:   o.Workers,
		Events:    o.Events,
		BatchSize: o.BatchSize,
		Fsync:     "always",
		SyncDur:   true,
		Reps:      reps,
	}

	tmpRoot, err := os.MkdirTemp("", "qtag-bench-")
	if err != nil {
		return rep, err
	}
	defer os.RemoveAll(tmpRoot)

	cases := []struct {
		shards     int
		gc         bool
		forwarding bool
		trace      float64
		overload   bool
	}{
		{1, false, false, 0, false}, // the seed: single lock, one fsync per record
		{4, true, false, 0, false},
		{16, true, false, 0, false},
		// The cluster tax: same stack, but the loaded node owns only
		// ~half the ring — the rest forwards over HTTP to a second
		// full-durability node before acking.
		{16, true, true, 0, false},
		// The tracing tax: the scaled ingest rung with distributed
		// tracing enabled at production (1%) and worst-case (100%)
		// head sampling — every request roots a span either way; the
		// rate decides how many are recorded into the ring.
		{16, true, false, 0.01, false},
		{16, true, false, 1.0, false},
		// The overload rung (informational): the scaled configuration
		// fronted by the admission controller, driven at 10× the ladder's
		// standard concurrency with the concurrency ceiling pinned at the
		// standard worker count. Prices goodput, shed rate and p99 under a
		// sustained ramp instead of pretending overload cannot happen.
		{16, true, false, 0, true},
	}
	for i, c := range cases {
		var best LoadReport
		for r := 0; r < reps; r++ {
			base := IngestServerConfig{
				Shards:              c.shards,
				WALDir:              filepath.Join(tmpRoot, fmt.Sprintf("wal-%d-%d", i, r)),
				Fsync:               wal.FsyncAlways,
				GroupCommit:         c.gc,
				GroupCommitMaxBatch: opts.GroupCommitMaxBatch,
				GroupCommitMaxWait:  opts.GroupCommitMaxWait,
				SyncDurability:      true,
				TraceSample:         c.trace,
			}
			if c.overload {
				base.Admission = true
				// Pin the ceiling at the standard worker count so the 10×
				// ramp below is guaranteed past the knee.
				base.AdmissionLimiter = admission.LimiterConfig{
					MinLimit:     o.Workers / 2,
					MaxLimit:     o.Workers,
					InitialLimit: o.Workers,
				}
			}
			var peer *IngestServer
			if c.forwarding {
				peerCfg := base
				peerCfg.WALDir = filepath.Join(tmpRoot, fmt.Sprintf("wal-%d-%d-peer", i, r))
				p, err := StartIngestServer(peerCfg)
				if err != nil {
					return rep, err
				}
				peer = p
				base.ClusterSelf = "bench-a"
				base.ClusterPeers = map[string]string{"bench-b": peer.URL}
				base.ClusterHandoffDir = filepath.Join(tmpRoot, fmt.Sprintf("hints-%d-%d", i, r))
			}
			srv, err := StartIngestServer(base)
			if err != nil {
				if peer != nil {
					peer.Close()
				}
				return rep, err
			}
			lo := LoadOptions{
				Workers: o.Workers, Events: o.Events, BatchSize: o.BatchSize, Seed: 2019,
			}
			if c.overload {
				lo.Workers = o.Workers * 10
				lo.TolerateShed = true
			}
			lr, err := RunLoad(srv.URL, lo)
			cerr := srv.Close()
			if peer != nil {
				if perr := peer.Close(); cerr == nil {
					cerr = perr
				}
			}
			if err != nil {
				return rep, fmt.Errorf("shards=%d: %w", c.shards, err)
			}
			if cerr != nil {
				return rep, fmt.Errorf("shards=%d close: %w", c.shards, cerr)
			}
			// The overload rung sheds by design, so accepted < Events is
			// its expected outcome — but it must still accept something
			// and stay error-free.
			if lr.Errors > 0 {
				return rep, fmt.Errorf("shards=%d: dirty run: %s", c.shards, lr)
			}
			if c.overload {
				if lr.Accepted == 0 {
					return rep, fmt.Errorf("overload rung accepted nothing: %s", lr)
				}
			} else if lr.Accepted != int64(o.Events) {
				return rep, fmt.Errorf("shards=%d: dirty run: %s", c.shards, lr)
			}
			if lr.Eps > best.Eps {
				best = lr
			}
		}
		fmt.Fprintf(out, "shards=%-2d group-commit=%-5v forwarding=%-5v trace=%-4v overload=%-5v  %s\n",
			c.shards, c.gc, c.forwarding, c.trace, c.overload, best)
		entryShedRate := 0.0
		if best.Requests > 0 {
			entryShedRate = float64(best.Shed) / float64(best.Requests)
		}
		rep.Entries = append(rep.Entries, BenchEntry{
			Shards:      c.shards,
			GroupCommit: c.gc,
			Forwarding:  c.forwarding,
			TraceSample: c.trace,
			Overload:    c.overload,
			ShedRate:    entryShedRate,
			Eps:         best.Eps,
			P50Ms:       float64(best.P50) / float64(time.Millisecond),
			P99Ms:       float64(best.P99) / float64(time.Millisecond),
			Accepted:    best.Accepted,
			DurationSec: best.Duration.Seconds(),
		})
	}
	if base := rep.Entries[0].Eps; base > 0 {
		rep.Speedup4Vs1 = rep.Entries[1].Eps / base
		rep.Speedup16Vs1 = rep.Entries[2].Eps / base
	}
	// Price tracing against the identical untraced rung.
	var untraced, traced1, traced100 float64
	for _, e := range rep.Entries {
		if e.Shards == 16 && e.GroupCommit && !e.Forwarding && !e.Overload {
			switch e.TraceSample {
			case 0:
				untraced = e.Eps
			case 0.01:
				traced1 = e.Eps
			case 1.0:
				traced100 = e.Eps
			}
		}
	}
	if untraced > 0 {
		if traced1 > 0 {
			rep.TraceOverhead1Pct = 1 - traced1/untraced
		}
		if traced100 > 0 {
			rep.TraceOverhead100Pct = 1 - traced100/untraced
		}
	}
	fmt.Fprintf(out, "speedup: 4 shards %.2fx, 16 shards %.2fx vs 1 shard\n",
		rep.Speedup4Vs1, rep.Speedup16Vs1)
	fmt.Fprintf(out, "tracing overhead vs untraced 16-shard rung: %.1f%% at 1%% sampling, %.1f%% at 100%%\n",
		rep.TraceOverhead1Pct*100, rep.TraceOverhead100Pct*100)
	if opts.MinSpeedup16 > 0 && rep.Speedup16Vs1 < opts.MinSpeedup16 {
		return rep, fmt.Errorf("16-shard speedup %.2fx below the %.1fx floor",
			rep.Speedup16Vs1, opts.MinSpeedup16)
	}
	return rep, nil
}

// WriteJSON writes the report, indented, to path.
func (r BenchLadderReport) WriteJSON(path string) error {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

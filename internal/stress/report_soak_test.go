package stress

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qtag/internal/aggregate"
	"qtag/internal/report"
	"qtag/internal/wal"
)

// readReport fetches GET /report and checks the classification
// partition invariant on the payload: for every row and source,
// viewed + not-viewed + not-measured = impressions. The invariant must
// hold on every response the endpoint ever serves, mid-ingest included.
func readReport(url string) error {
	resp, err := http.Get(url + "/report")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /report: status %d", resp.StatusCode)
	}
	var r report.ViewabilityReport
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		return fmt.Errorf("GET /report: decode: %w", err)
	}
	for _, row := range r.Campaigns.Rows {
		for src, c := range row.Sources {
			if c.Viewed+c.NotViewed+c.NotMeasured != row.Impressions {
				return fmt.Errorf("partition broken mid-ingest: %s/%s source %s: %+v of %d",
					row.CampaignID, row.Format, src, c, row.Impressions)
			}
		}
	}
	return nil
}

// TestReportSoakConcurrentReads hammers GET /report (JSON and
// Prometheus) while concurrent clients ingest through the full WAL
// path, then proves the streaming aggregates exactly equal a batch
// recompute over the raw store. Run under -race by make soak, this is
// the read-side counterpart of the ingest soak.
func TestReportSoakConcurrentReads(t *testing.T) {
	srv, err := StartIngestServer(IngestServerConfig{
		Shards:         8,
		WALDir:         t.TempDir(),
		Fsync:          wal.FsyncOnBatch,
		GroupCommit:    true,
		SyncDurability: true,
		// Default (15m) TTL: no eviction during the test, so the final
		// snapshot must be byte-equal to the batch oracle.
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	var reads atomic.Int64
	var readErr atomic.Value
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func(i int) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				if i%2 == 0 {
					err = readReport(srv.URL)
				} else {
					var resp *http.Response
					if resp, err = http.Get(srv.URL + "/report?format=prom"); err == nil {
						if resp.StatusCode != http.StatusOK {
							err = fmt.Errorf("prom status %d", resp.StatusCode)
						}
						resp.Body.Close()
					}
				}
				if err != nil {
					readErr.Store(err)
					return
				}
				reads.Add(1)
			}
		}(i)
	}

	const events = 2000
	rep, err := RunLoad(srv.URL, LoadOptions{Workers: 6, Events: events, BatchSize: 4, Seed: 23})
	close(stop)
	readers.Wait()
	if err != nil || rep.Errors != 0 || rep.Accepted != events {
		t.Fatalf("load not clean: %v (%s)", err, rep)
	}
	if err, _ := readErr.Load().(error); err != nil {
		t.Fatalf("report reader failed: %v", err)
	}
	if reads.Load() == 0 {
		t.Fatal("no report reads completed during ingest")
	}

	streaming := srv.Aggregate.Snapshot()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	batch := aggregate.Recompute(srv.Store.Events(), aggregate.Options{Shards: 8}).Snapshot()
	if len(streaming.Rows) == 0 {
		t.Fatal("no aggregate rows after load")
	}
	assertSnapshotsEqual(t, streaming, batch)
}

func assertSnapshotsEqual(t *testing.T, got, want aggregate.Snapshot) {
	t.Helper()
	g, err1 := json.Marshal(got)
	w, err2 := json.Marshal(want)
	if err1 != nil || err2 != nil {
		t.Fatalf("marshal: %v %v", err1, err2)
	}
	if string(g) != string(w) {
		t.Fatalf("streaming != batch recompute\n got: %s\nwant: %s", g, w)
	}
}

// TestReportSoakEvictionBoundsMemory runs the same load against an
// aggressive TTL and proves the open-impression working set drains to
// zero once traffic stops — the memory bound GET /report depends on —
// while the served report keeps satisfying the partition invariant.
func TestReportSoakEvictionBoundsMemory(t *testing.T) {
	srv, err := StartIngestServer(IngestServerConfig{
		Shards:           4,
		ReportTTL:        50 * time.Millisecond,
		ReportSweepEvery: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rep, err := RunLoad(srv.URL, LoadOptions{Workers: 4, Events: 1200, BatchSize: 4, Seed: 31})
	if err != nil || rep.Errors != 0 {
		t.Fatalf("load not clean: %v (%s)", err, rep)
	}

	deadline := time.Now().Add(5 * time.Second)
	for srv.Aggregate.OpenImpressions() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("open impressions stuck at %d after TTL expiry", srv.Aggregate.OpenImpressions())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if srv.Aggregate.Evicted() == 0 {
		t.Fatal("eviction never ran")
	}
	// Campaign totals survive eviction, and the report stays coherent.
	if err := readReport(srv.URL); err != nil {
		t.Fatal(err)
	}
	if rows := srv.Aggregate.Snapshot().Rows; len(rows) == 0 {
		t.Fatal("eviction dropped campaign totals")
	}
}

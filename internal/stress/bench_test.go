package stress

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestRunBenchLadderSmall runs the full nine-row ladder with a tiny
// event count — this is a correctness test of the harness (fresh WAL
// dir per row, clean runs, report shape, JSON output), not a
// performance assertion, so MinSpeedup16 stays 0.
func TestRunBenchLadderSmall(t *testing.T) {
	var progress strings.Builder
	rep, err := RunBenchLadder(BenchOptions{
		Workers:            4,
		Events:             120,
		BatchSize:          2,
		Reps:               1,
		GroupCommitMaxWait: 100 * time.Microsecond,
		Out:                &progress,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != LadderRungs {
		t.Fatalf("ladder produced %d rows, want %d", len(rep.Entries), LadderRungs)
	}
	wantShards := []int{1, 4, 16, 16, 16, 16, 16, 1, 16}
	wantGC := []bool{false, true, true, true, true, true, true, false, true}
	wantFwd := []bool{false, false, false, true, false, false, false, false, false}
	wantTrace := []float64{0, 0, 0, 0, 0.01, 1.0, 0, 0, 0}
	wantOverload := []bool{false, false, false, false, false, false, true, false, false}
	wantBinary := []bool{false, false, false, false, false, false, false, true, true}
	for i, e := range rep.Entries {
		if e.Shards != wantShards[i] || e.GroupCommit != wantGC[i] || e.Forwarding != wantFwd[i] ||
			e.TraceSample != wantTrace[i] || e.Overload != wantOverload[i] || e.Binary != wantBinary[i] {
			t.Fatalf("row %d = shards=%d gc=%v fwd=%v trace=%v overload=%v binary=%v, want shards=%d gc=%v fwd=%v trace=%v overload=%v binary=%v",
				i, e.Shards, e.GroupCommit, e.Forwarding, e.TraceSample, e.Overload, e.Binary,
				wantShards[i], wantGC[i], wantFwd[i], wantTrace[i], wantOverload[i], wantBinary[i])
		}
		if !e.Overload && e.AllocsPerEvent < 0 {
			t.Fatalf("row %d reported negative allocs/event: %+v", i, e)
		}
		if e.Overload {
			// The overload rung sheds by design: it must accept some
			// events but may not accept them all.
			if e.Accepted <= 0 || e.Accepted > 120 {
				t.Fatalf("overload row accepted %d events, want 1..120", e.Accepted)
			}
		} else if e.Accepted != 120 {
			t.Fatalf("row %d accepted %d events, want 120", i, e.Accepted)
		}
		if e.Eps <= 0 || e.DurationSec <= 0 {
			t.Fatalf("row %d reported no measurement: %+v", i, e)
		}
	}
	if rep.Config.Fsync != "always" || !rep.Config.SyncDur {
		t.Fatalf("config does not record the durability contract: %+v", rep.Config)
	}
	if rep.Speedup4Vs1 <= 0 || rep.Speedup16Vs1 <= 0 {
		t.Fatalf("speedups not computed: %+v", rep)
	}
	if rep.BinarySpeedup1Vs1 <= 0 || rep.BinarySpeedup16Vs1 <= 0 || rep.BinaryVsJSON16 <= 0 {
		t.Fatalf("binary speedups not computed: %+v", rep)
	}
	if len(rep.Codec) != 4 {
		t.Fatalf("codec microbench rows missing, got %d, want 4", len(rep.Codec))
	}
	for _, c := range rep.Codec {
		if c.Name == "" || c.NsPerOp <= 0 {
			t.Fatalf("codec row incomplete: %+v", c)
		}
	}
	if !strings.Contains(progress.String(), "speedup:") {
		t.Fatalf("progress output missing summary line:\n%s", progress.String())
	}
	if !strings.Contains(progress.String(), "tracing overhead") {
		t.Fatalf("progress output missing tracing overhead line:\n%s", progress.String())
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back BenchLadderReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != LadderRungs || back.Entries[2].Shards != 16 || !back.Entries[3].Forwarding ||
		back.Entries[5].TraceSample != 1.0 || !back.Entries[6].Overload ||
		!back.Entries[7].Binary || !back.Entries[8].Binary || back.Entries[8].Shards != 16 {
		t.Fatalf("report did not round-trip: %+v", back)
	}
	if len(back.Codec) != 4 {
		t.Fatalf("codec rows did not round-trip: %+v", back.Codec)
	}
}

// TestRunBenchLadderSpeedupFloor proves the acceptance gate fires: a
// floor no real machine can reach must fail with the measured ratio in
// the error, while still returning the complete report.
func TestRunBenchLadderSpeedupFloor(t *testing.T) {
	rep, err := RunBenchLadder(BenchOptions{
		Workers:      2,
		Events:       40,
		Reps:         1,
		MinSpeedup16: 1e9,
	})
	if err == nil {
		t.Fatal("a 1e9x speedup floor must fail")
	}
	if !strings.Contains(err.Error(), "below the") {
		t.Fatalf("unexpected gate error: %v", err)
	}
	if len(rep.Entries) != LadderRungs {
		t.Fatalf("gate failure must still return the full ladder, got %d rows", len(rep.Entries))
	}
}

// TestRunBenchLadderBinaryFloor proves the binary-codec acceptance gate
// fires independently of the shard-scaling gate.
func TestRunBenchLadderBinaryFloor(t *testing.T) {
	rep, err := RunBenchLadder(BenchOptions{
		Workers:          2,
		Events:           40,
		Reps:             1,
		MinBinarySpeedup: 1e9,
	})
	if err == nil {
		t.Fatal("a 1e9x binary speedup floor must fail")
	}
	if !strings.Contains(err.Error(), "binary") || !strings.Contains(err.Error(), "below the") {
		t.Fatalf("unexpected gate error: %v", err)
	}
	if len(rep.Entries) != LadderRungs {
		t.Fatalf("gate failure must still return the full ladder, got %d rows", len(rep.Entries))
	}
}

// Package cluster is the coordinator-free multi-node layer for the
// beacon ingest server. Any node accepts any beacon; a consistent-hash
// ring over impression IDs (the same FNV decision the in-process store
// shards by — beacon.HashID) names the single owner node, and
// non-owners relay the beacon there. When the owner is unreachable the
// relay degrades to hinted handoff: the beacon is journaled durably
// under a per-peer WAL namespace and replayed once the owner's health
// probe recovers. Because every store in the cluster is idempotent on
// the event key, at-least-once redelivery across all of these paths
// (forward retries, hint replays, crash-recovered hints) collapses to
// exactly-once counting — the invariant the fault suites assert:
// acked-by-any-live-node ⊆ recovered-cluster-wide, zero duplicates.
package cluster

import (
	"fmt"
	"sort"
	"strconv"

	"qtag/internal/beacon"
)

// DefaultReplicas is the virtual-node count per physical node. 64
// points per node keeps the expected ownership imbalance across a
// handful of nodes within a few percent while the ring stays small
// enough that rebuilding it on membership change is trivial.
const DefaultReplicas = 64

// Ring is an immutable consistent-hash ring: a sorted circle of
// virtual-node points, each owned by a physical node ID. Key lookup
// walks clockwise to the first point at or after the key's hash.
// Immutability is what makes it safe to share between the ingest hot
// path and the prober without locks — membership changes build a new
// Ring.
type Ring struct {
	points []ringPoint
	nodes  []string
}

type ringPoint struct {
	hash uint32
	node string
}

// NewRing builds a ring over the given node IDs with replicas virtual
// nodes each (DefaultReplicas when replicas <= 0). Node IDs must be
// non-empty and unique; order does not matter — any permutation of the
// same membership yields an identical ring, which is what lets every
// node compute ownership independently and agree.
func NewRing(nodeIDs []string, replicas int) (*Ring, error) {
	if len(nodeIDs) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(nodeIDs))
	nodes := make([]string, 0, len(nodeIDs))
	for _, id := range nodeIDs {
		if id == "" {
			return nil, fmt.Errorf("cluster: empty node id")
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate node id %q", id)
		}
		seen[id] = true
		nodes = append(nodes, id)
	}
	sort.Strings(nodes)
	points := make([]ringPoint, 0, len(nodes)*replicas)
	for _, id := range nodes {
		for i := 0; i < replicas; i++ {
			points = append(points, ringPoint{
				hash: mix32(beacon.HashID(id + "#" + strconv.Itoa(i))),
				node: id,
			})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		// Tie-break on node ID so colliding points still order
		// deterministically on every node.
		return points[i].node < points[j].node
	})
	return &Ring{points: points, nodes: nodes}, nil
}

// mix32 is a murmur3-style finalizer over the shared FNV hash. FNV-1a
// diffuses its last few input bytes poorly (each byte gets only one
// multiply), so the near-identical vnode labels ("n0#0", "n0#1", …)
// land in clumps and ownership skews badly without it. The ring's
// identity with the store's addressing is preserved: both start from
// the one shared beacon.HashID; the mix is a bijection applied
// consistently to both sides of the ring comparison, so equal
// impressions still map to equal positions.
func mix32(h uint32) uint32 {
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

// Owner returns the node ID owning the given key (an impression ID):
// the first virtual node clockwise from the key's ring position
// (mix32 ∘ beacon.HashID — see mix32).
func (r *Ring) Owner(key string) string {
	h := mix32(beacon.HashID(key))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point back to the start of the circle
	}
	return r.points[i].node
}

// Nodes returns the ring's member IDs, sorted. The slice is shared;
// callers must not mutate it.
func (r *Ring) Nodes() []string { return r.nodes }

// Size returns the number of physical nodes.
func (r *Ring) Size() int { return len(r.nodes) }

package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestDetectorSlowPeerTimesOutByProbeDeadline covers the failure mode a
// hard-down peer never shows: a peer whose /healthz accepts the
// connection and then hangs. The probe must be cut by its own deadline
// — Tick returns within roughly ProbeTimeout, not the wall-stall of the
// hung handler — and the suspect→dead progression is driven by those
// timed-out probes exactly like refused connections.
func TestDetectorSlowPeerTimesOutByProbeDeadline(t *testing.T) {
	var hang atomic.Bool
	hang.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hang.Load() {
			// Hold the request open until the prober gives up: the
			// model of a wedged-but-listening peer.
			<-r.Context().Done()
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	const probeTimeout = 80 * time.Millisecond
	d := NewDetector(map[string]string{"slow": srv.URL}, DetectorConfig{
		ProbeTimeout: probeTimeout,
		SuspectAfter: 1,
		DeadAfter:    2,
	})

	// Round 1: the hung probe must be bounded by the probe deadline.
	start := time.Now()
	d.Tick(context.Background())
	if elapsed := time.Since(start); elapsed > 10*probeTimeout {
		t.Fatalf("Tick stalled %v on a hung peer; want ~ProbeTimeout (%v)", elapsed, probeTimeout)
	}
	if got := d.State("slow"); got != PeerSuspect {
		t.Fatalf("after 1 timed-out probe: state = %v, want suspect", got)
	}

	// Round 2: still hanging → dead, again without wall-stalling.
	start = time.Now()
	d.Tick(context.Background())
	if elapsed := time.Since(start); elapsed > 10*probeTimeout {
		t.Fatalf("Tick stalled %v on round 2", elapsed)
	}
	if got := d.State("slow"); got != PeerDead {
		t.Fatalf("after 2 timed-out probes: state = %v, want dead", got)
	}
	if probes, failures := d.Probes(); probes != 2 || failures != 2 {
		t.Fatalf("probes/failures = %d/%d, want 2/2 (timeouts count as failures)", probes, failures)
	}

	// The peer un-wedges: one healthy probe resets straight to alive.
	hang.Store(false)
	d.Tick(context.Background())
	if got := d.State("slow"); got != PeerAlive {
		t.Fatalf("after recovery probe: state = %v, want alive", got)
	}
}

package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"qtag/internal/beacon"
	"qtag/internal/wal"
)

// HintOptions configures the hinted-handoff journal.
type HintOptions struct {
	// Dir is the handoff root; each peer gets a WAL under Dir/<peerID>.
	Dir string
	// Fsync is the WAL durability policy for hint appends. The zero
	// value (and FsyncOnBatch, which would leave single appends
	// unsynced) maps to FsyncAlways: a hint substitutes for a
	// synchronous forward, so it must be durable before the beacon is
	// acked — otherwise a crash after the ack silently loses the write
	// and breaks the acked ⊆ recovered invariant. FsyncInterval is
	// honoured for operators who explicitly trade the window.
	Fsync wal.FsyncPolicy
	// SegmentBytes is the per-peer WAL segment size (small by default —
	// 4 MiB — so drained segments compact away promptly).
	SegmentBytes int64
	// FS is the filesystem seam (real filesystem when nil); the crash
	// suites inject faults.CrashFS here.
	FS wal.FS
	// DrainBatch is how many hints each replay forward carries
	// (default 128).
	DrainBatch int
}

func (o *HintOptions) defaults() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.DrainBatch <= 0 {
		o.DrainBatch = 128
	}
	if o.Fsync == wal.FsyncOnBatch {
		o.Fsync = wal.FsyncAlways
	}
}

// HintLog is the durable hinted-handoff journal: one WAL namespace per
// unreachable peer, holding the beacons this node acked on the peer's
// behalf. Append must complete (durably, under FsyncAlways) before the
// beacon is acked; Drain replays the backlog to the recovered owner and
// compacts what was delivered.
//
// The log never needs a persisted drain cursor: after a crash every
// surviving hint is considered pending again and is redelivered, and
// the owner's idempotent store absorbs the duplicates. Over-delivery is
// free; under-delivery would be a lost ack.
type HintLog struct {
	opts HintOptions

	mu    sync.Mutex
	peers map[string]*peerHints

	written  int64 // total hints appended (atomic via mu)
	replayed int64 // total hints successfully forwarded by drains
}

type peerHints struct {
	drainMu sync.Mutex // serializes drains per peer
	mu      sync.Mutex // guards w and watermark
	w       *wal.WAL
	// watermark is the highest WAL index known delivered to the owner.
	// In-memory only — see the HintLog doc for why that is safe.
	watermark uint64
}

// OpenHintLog opens the handoff root, recovering any per-peer backlogs
// left by a previous process. Hints recovered from disk count as
// pending in full (the drain cursor is not persisted).
func OpenHintLog(opts HintOptions) (*HintLog, error) {
	opts.defaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("cluster: hint log needs a directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: create handoff dir: %w", err)
	}
	h := &HintLog{opts: opts, peers: make(map[string]*peerHints)}
	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("cluster: read handoff dir: %w", err)
	}
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		if _, err := h.peer(ent.Name()); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// peer returns (opening lazily) the hint state for peerID.
func (h *HintLog) peer(peerID string) (*peerHints, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if p, ok := h.peers[peerID]; ok {
		return p, nil
	}
	recovered := uint64(0)
	w, _, err := wal.Open(wal.Options{
		Dir:          filepath.Join(h.opts.Dir, peerID),
		SegmentBytes: h.opts.SegmentBytes,
		Fsync:        h.opts.Fsync,
		FS:           h.opts.FS,
	}, func(index uint64, payload []byte) error {
		recovered++
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: open hint wal for %s: %w", peerID, err)
	}
	p := &peerHints{w: w}
	// Everything that survived on disk is pending; anything older was
	// compacted away by a completed drain before the restart.
	p.watermark = w.LastIndex() - recovered
	h.peers[peerID] = p
	return p, nil
}

// hintBufPool recycles hint-record encode buffers. The WAL blocks
// Append until the record is durable, so the buffer is free again when
// Append returns.
var hintBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// Append durably journals a beacon for later delivery to peerID. When
// it returns nil the hint has hit the WAL under the configured fsync
// policy — under the FsyncAlways default the caller may ack the beacon.
// Hints are written in the binary beacon codec; Drain dispatches on the
// payload's version tag, so backlogs left by a pre-binary process (JSON
// hints) still deliver after an upgrade.
func (h *HintLog) Append(peerID string, e beacon.Event) error {
	p, err := h.peer(peerID)
	if err != nil {
		return err
	}
	buf := hintBufPool.Get().(*[]byte)
	payload := beacon.AppendBinaryEvent((*buf)[:0], e)
	p.mu.Lock()
	err = p.w.Append(payload)
	p.mu.Unlock()
	*buf = payload[:0]
	hintBufPool.Put(buf)
	if err != nil {
		return fmt.Errorf("cluster: append hint for %s: %w", peerID, err)
	}
	h.mu.Lock()
	h.written++
	h.mu.Unlock()
	return nil
}

// Pending returns the number of hints not yet known delivered to
// peerID.
func (h *HintLog) Pending(peerID string) int64 {
	h.mu.Lock()
	p, ok := h.peers[peerID]
	h.mu.Unlock()
	if !ok {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return int64(p.w.LastIndex() - p.watermark)
}

// TotalPending returns the backlog summed across all peers — the
// readiness probe's signal.
func (h *HintLog) TotalPending() int64 {
	h.mu.Lock()
	ids := make([]string, 0, len(h.peers))
	for id := range h.peers {
		ids = append(ids, id)
	}
	h.mu.Unlock()
	var n int64
	for _, id := range ids {
		n += h.Pending(id)
	}
	return n
}

// Written and Replayed report lifetime hint counters for metrics.
func (h *HintLog) Written() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.written
}

func (h *HintLog) Replayed() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.replayed
}

// Drain replays peerID's backlog through forward in DrainBatch-sized
// batches and compacts what was delivered. Drains for one peer are
// serialized; appends may continue concurrently (they land above the
// drain's cut index and stay pending for the next round).
//
// forward must deliver the batch to the owner (or fail). On any forward
// error the drain stops: earlier batches in this drain may already have
// been delivered but are NOT yet marked drained, so the next drain
// redelivers them — safe, because the owner's store dedups. Returns the
// number of hints forwarded.
func (h *HintLog) Drain(peerID string, forward func([]beacon.Event) error) (int, error) {
	p, err := h.peer(peerID)
	if err != nil {
		return 0, err
	}
	p.drainMu.Lock()
	defer p.drainMu.Unlock()

	p.mu.Lock()
	// The cut is the highest durable index at drain start: everything at
	// or below it is on disk and eligible; appends racing past it wait
	// for the next drain.
	cut, err := p.w.SyncIndex()
	low := p.watermark
	p.mu.Unlock()
	if err != nil {
		return 0, fmt.Errorf("cluster: sync hint wal for %s: %w", peerID, err)
	}
	if cut <= low {
		return 0, nil
	}

	fsys := h.opts.FS
	dir := filepath.Join(h.opts.Dir, peerID)
	var batch []beacon.Event
	sent := 0
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := forward(batch); err != nil {
			return err
		}
		sent += len(batch)
		batch = batch[:0]
		return nil
	}
	_, scanErr := wal.Scan(fsys, dir, func(index uint64, payload []byte) error {
		if index <= low || index > cut {
			return nil
		}
		// DecodeStoredEvent copies the event's strings out of the scan
		// buffer — required, because wal.Scan reuses that buffer while the
		// batch accumulates across records — and accepts both the binary
		// hints this version writes and JSON hints from an older process.
		e, err := beacon.DecodeStoredEvent(payload)
		if err != nil {
			// A corrupt hint is unrecoverable; dropping it is the only
			// option that lets the rest of the backlog deliver. The WAL
			// layer's checksums make this a torn-write artifact, not a
			// silent data error.
			return nil
		}
		batch = append(batch, e)
		if len(batch) >= h.opts.DrainBatch {
			return flush()
		}
		return nil
	})
	if scanErr == nil {
		scanErr = flush()
	}
	if scanErr != nil {
		return sent, fmt.Errorf("cluster: drain hints for %s: %w", peerID, scanErr)
	}

	p.mu.Lock()
	p.watermark = cut
	// Seal the active segment so the delivered records become
	// compactable, then drop every sealed segment fully at or below the
	// cut. Hints appended during the drain live above the cut and
	// survive in the newly sealed segment.
	if err := p.w.Rotate(); err == nil {
		p.w.Compact(cut)
	}
	p.mu.Unlock()

	h.mu.Lock()
	h.replayed += int64(sent)
	h.mu.Unlock()
	return sent, nil
}

// Close closes every per-peer WAL.
func (h *HintLog) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	var first error
	for id, p := range h.peers {
		p.mu.Lock()
		if err := p.w.Close(); err != nil && first == nil {
			first = fmt.Errorf("cluster: close hint wal for %s: %w", id, err)
		}
		p.mu.Unlock()
	}
	return first
}

package cluster

// Satellite coverage: the internal/faults HTTP RoundTripper driving the
// peer-forwarding path. Each test wires a fault profile under a Node's
// forwarders and asserts the degradation contract: breaker state
// transitions happen when they should, and every beacon the node acks
// while the network misbehaves is either delivered or journaled to
// hinted handoff — never dropped.

import (
	"net/http"
	"testing"
	"time"

	"qtag/internal/beacon"
	"qtag/internal/faults"
	"qtag/internal/simrand"
)

// newFaultyNode builds a node whose forwards to one real peer pass
// through a faults.RoundTripper with the given profile.
func newFaultyNode(t *testing.T, p faults.Profile, seed uint64, cfgTweak func(*Config)) (*Node, *beacon.Store, *faults.RoundTripper) {
	t.Helper()
	peerStore, peerURL := startPeerServer(t)
	rt := faults.NewRoundTripper(nil, simrand.New(seed).Fork("forward-faults"), p)
	rt.SetSleep(nil) // count injected latency, don't pay it
	cfg := Config{
		Self:           "a",
		Peers:          map[string]string{"b": peerURL},
		Local:          beacon.NewStore(),
		HandoffDir:     t.TempDir(),
		Transport:      rt,
		ForwardTimeout: time.Second,
		ForwardRetries: 1,
		Jitter:         simrand.New(seed).Fork("jitter").Float64,
	}
	if cfgTweak != nil {
		cfgTweak(&cfg)
	}
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n, peerStore, rt
}

func TestForwardingUnderInjected5xxBurst(t *testing.T) {
	// Every request 503s: the breaker must open after Threshold
	// consecutive failures, and every single submission must still be
	// acked — journaled as a hint once forwarding fails.
	n, peerStore, rt := newFaultyNode(t, faults.Profile{Error: 1.0}, 7, func(c *Config) {
		c.BreakerThreshold = 3
		c.BreakerCooldown = time.Hour // stay open for the test's duration
	})

	keys := keysOwnedBy(t, n.Ring(), "b", 10)
	for _, k := range keys {
		if err := n.Submit(nodeEvent(k)); err != nil {
			t.Fatalf("submit %s not acked under 5xx burst: %v", k, err)
		}
	}
	if got := n.BreakerState("b"); got != beacon.BreakerOpen {
		t.Fatalf("breaker = %v after sustained 5xx, want open", got)
	}
	if got := n.Stats().Hinted; got != 10 {
		t.Fatalf("hinted = %d, want all 10", got)
	}
	if peerStore.Len() != 0 {
		t.Fatalf("peer store holds %d despite total 5xx", peerStore.Len())
	}
	if rt.Stats().Errored == 0 {
		t.Fatal("fault layer injected nothing; test wired wrong")
	}
	// Once the breaker is open, submissions skip the wire entirely: the
	// injected-error count must stop growing.
	before := rt.Stats().Errored
	for _, k := range keysOwnedBy(t, n.Ring(), "b", 20)[10:] {
		if err := n.Submit(nodeEvent(k)); err != nil {
			t.Fatal(err)
		}
	}
	if after := rt.Stats().Errored; after != before {
		t.Fatalf("open breaker still sent %d requests", after-before)
	}
}

func TestForwardingUnderConnectionDrops(t *testing.T) {
	// A full partition (every connection dropped before reaching the
	// peer): same contract as 5xx — breaker opens, everything hints.
	n, peerStore, _ := newFaultyNode(t, faults.Profile{Drop: 1.0}, 11, func(c *Config) {
		c.BreakerThreshold = 2
		c.BreakerCooldown = time.Hour
	})
	keys := keysOwnedBy(t, n.Ring(), "b", 6)
	for _, k := range keys {
		if err := n.Submit(nodeEvent(k)); err != nil {
			t.Fatalf("submit under partition not acked: %v", err)
		}
	}
	if got := n.BreakerState("b"); got != beacon.BreakerOpen {
		t.Fatalf("breaker = %v, want open", got)
	}
	if got := n.Stats().HintBacklog; got != 6 {
		t.Fatalf("backlog = %d, want 6", got)
	}
	if peerStore.Len() != 0 {
		t.Fatalf("peer store holds %d under total partition", peerStore.Len())
	}
}

func TestForwardingRecoversAfterFaultsClear(t *testing.T) {
	// Intermittent faults (40% failures): with a retry budget the node
	// delivers what it can, hints the rest, and the breaker stays
	// closed because successes keep interrupting the failure streaks.
	// Afterwards the drain path clears the backlog through the now-
	// healthy wire and nothing is lost or duplicated.
	n, peerStore, _ := newFaultyNode(t, faults.Profile{Error: 0.4}, 23, func(c *Config) {
		c.BreakerThreshold = 50 // don't trip during the lossy phase
		c.ForwardRetries = 2
	})
	keys := keysOwnedBy(t, n.Ring(), "b", 40)
	for _, k := range keys {
		if err := n.Submit(nodeEvent(k)); err != nil {
			t.Fatalf("submit %s: %v", k, err)
		}
	}
	st := n.Stats()
	if st.Forwarded+st.Hinted != 40 {
		t.Fatalf("forwarded %d + hinted %d != 40 acked", st.Forwarded, st.Hinted)
	}
	if st.Forwarded == 0 {
		t.Fatal("nothing forwarded at 60% success; profile wired wrong")
	}

	// Drain whatever hinted. DrainNow goes through the same faulty
	// transport, so allow several rounds.
	deadline := time.Now().Add(10 * time.Second)
	for n.Stats().HintBacklog > 0 && time.Now().Before(deadline) {
		n.DrainNow("b")
	}
	if got := n.Stats().HintBacklog; got != 0 {
		t.Fatalf("backlog never drained: %d", got)
	}
	// Exactly-once cluster-wide: the peer's idempotent store holds each
	// impression once, no matter how many times faults forced retries
	// and redeliveries.
	if peerStore.Len() != 40 {
		t.Fatalf("peer store holds %d, want exactly 40", peerStore.Len())
	}
}

func TestForwardingAmbiguousPartialFailureNoDuplicates(t *testing.T) {
	// The nastiest mode: the request lands, the response is lost. The
	// forwarder must retry (or hint) — and the peer's dedup must absorb
	// the redelivery so the beacon still counts exactly once.
	n, peerStore, rt := newFaultyNode(t, faults.Profile{Partial: 0.5}, 31, func(c *Config) {
		c.ForwardRetries = 4
		c.BreakerThreshold = 100
	})
	keys := keysOwnedBy(t, n.Ring(), "b", 30)
	for _, k := range keys {
		if err := n.Submit(nodeEvent(k)); err != nil {
			t.Fatalf("submit %s: %v", k, err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for n.Stats().HintBacklog > 0 && time.Now().Before(deadline) {
		n.DrainNow("b")
	}
	if got := n.Stats().HintBacklog; got != 0 {
		t.Fatalf("backlog never drained: %d", got)
	}
	if rt.Stats().Partial == 0 {
		t.Fatal("no partial failures injected; test wired wrong")
	}
	if peerStore.Len() != 30 {
		t.Fatalf("peer store holds %d, want exactly 30 (dedup under at-least-once)", peerStore.Len())
	}
}

func TestForwardingRetryAfterHonoured(t *testing.T) {
	// Injected 429s carry Retry-After; the forwarder's recorded sleeps
	// must reflect the header rather than the tiny exponential base.
	peerURL := "http://127.0.0.1:1" // never reached; every request 429s
	rt := faults.NewRoundTripper(http.DefaultTransport, simrand.New(3).Fork("ra"),
		faults.Profile{Error: 1.0, ErrorCode: 429, RetryAfter: 2 * time.Second})
	var slept []time.Duration
	sink := &beacon.HTTPSink{
		BaseURL: peerURL,
		Client:  &http.Client{Transport: rt},
		Retries: 2,
		Sleep:   func(d time.Duration) { slept = append(slept, d) },
	}
	if err := sink.Submit(nodeEvent("imp-ra")); err == nil {
		t.Fatal("expected failure after retries")
	}
	if len(slept) != 2 {
		t.Fatalf("recorded %d sleeps, want 2", len(slept))
	}
	for _, d := range slept {
		if d < 2*time.Second {
			t.Fatalf("backoff %v ignored Retry-After of 2s", d)
		}
	}
}

package cluster

// Trace-propagation-under-faults suite: every beacon a client roots a
// trace for must land in the shared span store as ONE connected tree —
// exactly one root, no orphan spans, no duplicate span IDs, and at
// least one store.apply leaf proving the beacon reached a durable
// store — no matter what the cluster network does in between: retry
// storms, handoff-then-drain, same-address restarts. The harness
// shares a single SpanStore across all nodes (the in-process stand-in
// for a central collector), so spans survive node kills and a trace
// that crosses nodes is assertable in one place.

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"

	"qtag/internal/beacon"
	"qtag/internal/faults"
	"qtag/internal/obs"
	"qtag/internal/simrand"
)

// traceHarness starts a 3-node cluster with tracing at sample rate 1
// feeding one shared span store.
func traceHarness(t *testing.T, mut func(*HarnessConfig)) (*Harness, *obs.SpanStore) {
	t.Helper()
	store := obs.NewSpanStore(1 << 16)
	cfg := HarnessConfig{
		Dir:              t.TempDir(),
		Nodes:            3,
		ProbeEvery:       20 * time.Millisecond,
		ProbeTimeout:     250 * time.Millisecond,
		SuspectAfter:     1,
		DeadAfter:        2,
		ForwardTimeout:   500 * time.Millisecond,
		ForwardRetries:   1,
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
		SpanStore:        store,
		TraceSample:      1,
	}
	if mut != nil {
		mut(&cfg)
	}
	h, err := StartHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	return h, store
}

// clientTracer builds the client-side tracer that roots each beacon's
// trace, recording into the same shared store the cluster uses.
func clientTracer(store *obs.SpanStore) *obs.Tracer {
	return obs.NewTracer(obs.TracerConfig{Node: "client", SampleRate: 1, Store: store})
}

// sendTraced submits sweep impressions [from, to) round-robin across
// the live nodes, each batch under a fresh client-rooted trace, and
// records acked batches as traceID -> label. Unacked batches may leave
// partial traces; only acked ones carry the connectivity guarantee.
func sendTraced(t *testing.T, h *Harness, ct *obs.Tracer, from, to int, acked map[string]string) {
	t.Helper()
	urls := h.LiveURLs()
	if len(urls) == 0 {
		t.Fatal("no live nodes to send to")
	}
	sinks := make([]*beacon.HTTPSink, len(urls))
	for i, u := range urls {
		sinks[i] = &beacon.HTTPSink{BaseURL: u, Retries: 2, Timeout: 2 * time.Second, Spans: ct}
	}
	for i := from; i < to; i++ {
		root := ct.StartSpan(obs.SpanContext{}, "client.submit")
		events := sweepEvents(i)
		for j := range events {
			events[j].Trace = root.TraceParent()
		}
		err := sinks[i%len(sinks)].SubmitBatch(events)
		if err != nil {
			root.SetError(err.Error())
		}
		root.End()
		if err == nil {
			acked[root.Context().TraceID.String()] = fmt.Sprintf("sweep-%05d", i)
		}
	}
}

// connectivityProblems checks one trace's span set for tree-shape
// invariants: exactly one root, every parent present, no duplicate
// span IDs.
func connectivityProblems(spans []obs.SpanRecord) []string {
	if len(spans) == 0 {
		return []string{"no spans recorded"}
	}
	ids := make(map[string]int, len(spans))
	for _, sp := range spans {
		ids[sp.SpanID]++
	}
	var probs []string
	for id, n := range ids {
		if n > 1 {
			probs = append(probs, fmt.Sprintf("span id %s appears %d times", id, n))
		}
	}
	roots := 0
	for _, sp := range spans {
		if sp.ParentID == "" {
			roots++
		} else if ids[sp.ParentID] == 0 {
			probs = append(probs, fmt.Sprintf("orphan: %s on %s (span %s) references missing parent %s",
				sp.Name, sp.Node, sp.SpanID, sp.ParentID))
		}
	}
	if roots != 1 {
		probs = append(probs, fmt.Sprintf("expected exactly 1 root span, got %d", roots))
	}
	return probs
}

// traceProblems adds the beacon-delivery invariant on top of
// connectivity: a durable store.apply leaf must exist, proving the
// acked beacon reached a store.
func traceProblems(spans []obs.SpanRecord) []string {
	probs := connectivityProblems(spans)
	applies := 0
	for _, sp := range spans {
		if sp.Name == "store.apply" {
			applies++
		}
	}
	if applies == 0 {
		probs = append(probs, "no store.apply span: beacon never provably reached a store")
	}
	return probs
}

// waitConnectedTraces polls until every acked trace satisfies the
// connectivity invariants. Polling is required: span End()s race the
// client's ack (a server records its ingest span after writing the
// response) and drained hints apply long after the original ack.
func waitConnectedTraces(t *testing.T, store *obs.SpanStore, acked map[string]string) {
	t.Helper()
	if len(acked) == 0 {
		t.Fatal("no traced batches were acked; suite exercised nothing")
	}
	deadline := time.Now().Add(30 * time.Second)
	var problems []string
	for {
		problems = problems[:0]
		for tid, label := range acked {
			for _, p := range traceProblems(store.Trace(tid)) {
				problems = append(problems, fmt.Sprintf("trace %s (%s): %s", tid, label, p))
			}
		}
		if len(problems) == 0 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	sort.Strings(problems)
	for _, p := range problems {
		t.Error(p)
	}
	t.Fatalf("%d trace-propagation problems across %d acked traces", len(problems), len(acked))
}

// spanNames returns the sorted distinct span names across all traces in
// acked — used to assert a scenario actually exercised the hop it
// targets (a handoff test that never hinted proves nothing).
func spanNames(store *obs.SpanStore, acked map[string]string) map[string]int {
	out := make(map[string]int)
	for tid := range acked {
		for _, sp := range store.Trace(tid) {
			out[sp.Name]++
		}
	}
	return out
}

func TestTracePropagationUnderRetryStorm(t *testing.T) {
	// Inter-node links inject 503s and torn responses (delivered but
	// unacked), so forwards retry, breakers trip, probes flap, and a
	// slice of traffic degrades to hint-then-drain — all while the
	// client-facing ingest stays clean. Every acked trace must still be
	// one connected tree.
	h, store := traceHarness(t, func(c *HarnessConfig) {
		c.ForwardRetries = 3
		c.FaultTransport = func(next http.RoundTripper) http.RoundTripper {
			rt := faults.NewRoundTripper(next, simrand.New(1109).Fork("trace-storm"), faults.Profile{
				Error:   0.25,
				Partial: 0.10,
			})
			rt.SetSleep(nil) // count injected latency, don't pay it
			return rt
		}
	})
	ct := clientTracer(store)

	acked := make(map[string]string)
	sendTraced(t, h, ct, 0, 60, acked)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := h.WaitDrained(ctx); err != nil {
		t.Fatal(err)
	}
	waitConnectedTraces(t, store, acked)

	names := spanNames(store, acked)
	for _, want := range []string{"client.submit", "sink.deliver", "ingest.events", "store.apply"} {
		if names[want] == 0 {
			t.Errorf("no %q spans across %d traces; storm did not exercise the full chain", want, len(acked))
		}
	}
	t.Logf("retry storm: %d acked traces connected; span mix %v", len(acked), names)
}

func TestTracePropagationHandoffThenDrain(t *testing.T) {
	// Kill one node, ingest its share through the survivors (degrading
	// to durable hints), restart it, and let the drain replay. The
	// replayed beacons' store.apply spans must still parent back —
	// through handoff.drain and the WAL-persisted handoff.hint context —
	// to the client root minted before the outage.
	h, store := traceHarness(t, nil)
	ct := clientTracer(store)
	acked := make(map[string]string)

	if err := h.Kill(2); err != nil {
		t.Fatal(err)
	}
	waitState(t, h, 0, "n2", PeerDead)

	sendTraced(t, h, ct, 0, 60, acked)

	if err := h.Restart(2); err != nil {
		t.Fatal(err)
	}
	waitState(t, h, 0, "n2", PeerAlive)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := h.WaitDrained(ctx); err != nil {
		t.Fatal(err)
	}
	waitConnectedTraces(t, store, acked)

	names := spanNames(store, acked)
	if names["handoff.hint"] == 0 || names["handoff.drain"] == 0 {
		t.Fatalf("handoff path not exercised: span mix %v", names)
	}
	// The tracing guarantee rides on top of delivery, not instead of it:
	// every traced impression must actually be stored cluster-wide.
	counts := h.ClusterEvents()
	for tid, label := range acked {
		found := false
		for key := range counts {
			if strings.Contains(key, label) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("trace %s (%s): no stored event for impression", tid, label)
		}
	}
	t.Logf("handoff drain: %d acked traces connected; span mix %v", len(acked), names)
}

func TestTracePropagationAcrossRestarts(t *testing.T) {
	// The kill sweep from the acceptance suite, traced: each node is
	// killed and restarted on its same address while traffic continues.
	// Traces must stay connected across restarts in both roles — as the
	// hinting survivor and as the restarted owner receiving drains.
	h, store := traceHarness(t, nil)
	ct := clientTracer(store)
	acked := make(map[string]string)

	const batch = 30
	offset := 0
	for victim := 0; victim < 3; victim++ {
		sendTraced(t, h, ct, offset, offset+batch, acked)
		offset += batch

		if err := h.Kill(victim); err != nil {
			t.Fatalf("kill n%d: %v", victim, err)
		}
		observer := (victim + 1) % 3
		waitState(t, h, observer, fmt.Sprintf("n%d", victim), PeerDead)

		sendTraced(t, h, ct, offset, offset+batch, acked)
		offset += batch

		if err := h.Restart(victim); err != nil {
			t.Fatalf("restart n%d: %v", victim, err)
		}
		waitState(t, h, observer, fmt.Sprintf("n%d", victim), PeerAlive)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := h.WaitDrained(ctx); err != nil {
		t.Fatal(err)
	}
	waitConnectedTraces(t, store, acked)
	t.Logf("restart sweep: %d acked traces connected across 3 kills; span mix %v",
		len(acked), spanNames(store, acked))
}

func TestTracePropagationFederatedReport(t *testing.T) {
	// A federated /report fans out to every peer; the fan-out and each
	// per-peer fetch must join the caller's trace as report.federate and
	// federate.fetch children.
	h, store := traceHarness(t, nil)
	ct := clientTracer(store)

	root := ct.StartSpan(obs.SpanContext{}, "client.report")
	req, err := http.NewRequest(http.MethodGet, h.Nodes[0].URL+"/report?federated=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceParentHeader, root.TraceParent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	root.End()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("federated report status %d", resp.StatusCode)
	}

	tid := root.Context().TraceID.String()
	deadline := time.Now().Add(10 * time.Second)
	for {
		names := map[string]int{}
		for _, sp := range store.Trace(tid) {
			names[sp.Name]++
		}
		if names["report.federate"] == 1 && names["federate.fetch"] == 2 {
			if probs := connectivityProblems(store.Trace(tid)); len(probs) > 0 {
				t.Fatalf("federated trace malformed: %v", probs)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("federated trace incomplete: span mix %v", names)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

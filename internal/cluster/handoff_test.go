package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"qtag/internal/beacon"
)

func hintEvent(i int) beacon.Event {
	return beacon.Event{
		ImpressionID: fmt.Sprintf("imp-%04d", i),
		CampaignID:   "c1",
		Source:       beacon.SourceQTag,
		Type:         beacon.EventLoaded,
		At:           time.Unix(1000, 0),
	}
}

func TestHintLogAppendDrainCompact(t *testing.T) {
	h, err := OpenHintLog(HintOptions{Dir: t.TempDir(), DrainBatch: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	for i := 0; i < 10; i++ {
		if err := h.Append("peer1", hintEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.Pending("peer1"); got != 10 {
		t.Fatalf("pending = %d, want 10", got)
	}

	var got []beacon.Event
	n, err := h.Drain("peer1", func(batch []beacon.Event) error {
		got = append(got, batch...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 || len(got) != 10 {
		t.Fatalf("drained %d (%d events), want 10", n, len(got))
	}
	for i, e := range got {
		if e.ImpressionID != fmt.Sprintf("imp-%04d", i) {
			t.Fatalf("event %d out of order: %s", i, e.ImpressionID)
		}
	}
	if got := h.Pending("peer1"); got != 0 {
		t.Fatalf("pending after drain = %d, want 0", got)
	}
	// A second drain has nothing to deliver.
	n, err = h.Drain("peer1", func([]beacon.Event) error {
		t.Fatal("forward called with nothing pending")
		return nil
	})
	if err != nil || n != 0 {
		t.Fatalf("idle drain = (%d, %v), want (0, nil)", n, err)
	}
}

func TestHintLogDrainFailureRedelivers(t *testing.T) {
	h, err := OpenHintLog(HintOptions{Dir: t.TempDir(), DrainBatch: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	for i := 0; i < 6; i++ {
		if err := h.Append("p", hintEvent(i)); err != nil {
			t.Fatal(err)
		}
	}

	// First drain delivers one batch then dies: nothing is marked
	// drained, so the retry redelivers everything — including the batch
	// that already landed. The owner's dedup absorbs that.
	calls := 0
	boom := errors.New("peer fell over")
	_, err = h.Drain("p", func(batch []beacon.Event) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("drain error = %v, want %v", err, boom)
	}
	if got := h.Pending("p"); got != 6 {
		t.Fatalf("pending after failed drain = %d, want 6 (no partial credit)", got)
	}

	var redelivered int
	if _, err := h.Drain("p", func(batch []beacon.Event) error {
		redelivered += len(batch)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if redelivered != 6 {
		t.Fatalf("redelivered %d, want all 6", redelivered)
	}
}

func TestHintLogRecoversBacklogAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	h, err := OpenHintLog(HintOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := h.Append("p", hintEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Drain 5, append 3 more, then "crash" (close without draining).
	if _, err := h.Drain("p", func([]beacon.Event) error { return nil }); err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 8; i++ {
		if err := h.Append("p", hintEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	h2, err := OpenHintLog(HintOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	// The drained 5 were compacted away; only the 3 survivors are
	// pending after reopen.
	if got := h2.Pending("p"); got != 3 {
		t.Fatalf("pending after reopen = %d, want 3", got)
	}
	var got []string
	if _, err := h2.Drain("p", func(batch []beacon.Event) error {
		for _, e := range batch {
			got = append(got, e.ImpressionID)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"imp-0005", "imp-0006", "imp-0007"}
	if len(got) != len(want) {
		t.Fatalf("recovered drain = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered drain = %v, want %v", got, want)
		}
	}
}

func TestHintLogConcurrentAppendDuringDrainStaysPending(t *testing.T) {
	h, err := OpenHintLog(HintOptions{Dir: t.TempDir(), DrainBatch: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	for i := 0; i < 4; i++ {
		if err := h.Append("p", hintEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Append DURING the drain: the new hint sits above the drain's cut
	// and must remain pending afterwards, not get lost by the compact.
	if _, err := h.Drain("p", func(batch []beacon.Event) error {
		return h.Append("p", hintEvent(99))
	}); err != nil {
		t.Fatal(err)
	}
	if got := h.Pending("p"); got != 1 {
		t.Fatalf("pending after drain-with-concurrent-append = %d, want 1", got)
	}
	var last []beacon.Event
	if _, err := h.Drain("p", func(batch []beacon.Event) error {
		last = append(last, batch...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(last) != 1 || last[0].ImpressionID != "imp-0099" {
		t.Fatalf("follow-up drain = %+v, want just imp-0099", last)
	}
}

func TestHintLogTotalPendingAcrossPeers(t *testing.T) {
	h, err := OpenHintLog(HintOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	for i := 0; i < 3; i++ {
		if err := h.Append("a", hintEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := h.Append("b", hintEvent(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.TotalPending(); got != 5 {
		t.Fatalf("TotalPending = %d, want 5", got)
	}
	if h.Written() != 5 {
		t.Fatalf("Written = %d, want 5", h.Written())
	}
	if _, err := h.Drain("a", func([]beacon.Event) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := h.TotalPending(); got != 2 {
		t.Fatalf("TotalPending after draining a = %d, want 2", got)
	}
	if h.Replayed() != 3 {
		t.Fatalf("Replayed = %d, want 3", h.Replayed())
	}
}

package cluster

import (
	"fmt"
	"testing"

	"qtag/internal/beacon"
)

func TestRingMembershipOrderIrrelevant(t *testing.T) {
	a, err := NewRing([]string{"n0", "n1", "n2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"n2", "n0", "n1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("imp-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("rings disagree on %s: %s vs %s", key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingOwnershipStableAcrossLookups(t *testing.T) {
	r, err := NewRing([]string{"n0", "n1", "n2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("imp-%d", i)
		first := r.Owner(key)
		for j := 0; j < 3; j++ {
			if got := r.Owner(key); got != first {
				t.Fatalf("owner of %s flapped: %s then %s", key, first, got)
			}
		}
	}
}

func TestRingDistribution(t *testing.T) {
	r, err := NewRing([]string{"n0", "n1", "n2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("imp-%08d", i))]++
	}
	if len(counts) != 3 {
		t.Fatalf("only %d nodes own keys: %v", len(counts), counts)
	}
	for id, c := range counts {
		frac := float64(c) / n
		// With 64 vnodes per node the observed share should be within a
		// loose band around 1/3; a node outside [15%, 55%] means the ring
		// placement is broken, not merely unlucky.
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("node %s owns %.1f%% of keys: %v", id, frac*100, counts)
		}
	}
}

func TestRingMinimalReshuffleOnMembershipChange(t *testing.T) {
	// Consistent hashing's point: adding a node moves only the keys the
	// new node takes over, roughly 1/(n+1) of them — never a wholesale
	// reshuffle like mod-N would.
	before, _ := NewRing([]string{"n0", "n1", "n2"}, 0)
	after, _ := NewRing([]string{"n0", "n1", "n2", "n3"}, 0)
	const n = 20000
	moved := 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("imp-%08d", i)
		ob, oa := before.Owner(key), after.Owner(key)
		if ob != oa {
			if oa != "n3" {
				t.Fatalf("key %s moved between pre-existing nodes: %s -> %s", key, ob, oa)
			}
			moved++
		}
	}
	frac := float64(moved) / n
	if frac < 0.10 || frac > 0.45 {
		t.Fatalf("%.1f%% of keys moved on node add; want roughly 25%%", frac*100)
	}
}

func TestRingSharesStoreHash(t *testing.T) {
	// The ring and the store must hash an impression identically — the
	// shared addressing layer's contract. Same hash in means duplicate
	// events of one impression dedup on one node in one shard.
	key := "impression-xyz"
	if beacon.HashID(key) != beacon.HashID(key) {
		t.Fatal("HashID not deterministic")
	}
	r, _ := NewRing([]string{"solo"}, 0)
	if got := r.Owner(key); got != "solo" {
		t.Fatalf("single-node ring owner = %q, want solo", got)
	}
}

func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty membership accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Fatal("duplicate node id accepted")
	}
	if _, err := NewRing([]string{""}, 0); err == nil {
		t.Fatal("empty node id accepted")
	}
}

package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"qtag/internal/beacon"
	"qtag/internal/obs"
	"qtag/internal/wal"
)

// Config wires one cluster node.
type Config struct {
	// Self is this node's ID; Peers maps every OTHER node's ID to its
	// base URL. Self plus the peer IDs form the ring — every node must
	// be configured with the same membership or ownership diverges.
	Self  string
	Peers map[string]string

	// Local is the sink owner-routed beacons land in — the node's
	// durable ingest chain (WAL journal + store + aggregator).
	Local beacon.Sink

	// Replicas is the virtual-node count per node (DefaultReplicas when
	// zero).
	Replicas int

	// HandoffDir is the hinted-handoff root (required when Peers is
	// non-empty).
	HandoffDir string
	// HintFsync and HintFS pass through to HintOptions.
	HintFsync wal.FsyncPolicy
	HintFS    wal.FS
	// DrainBatch is the hint replay batch size (default 128).
	DrainBatch int

	// ProbeEvery is the health-probe interval (default 1s).
	ProbeEvery time.Duration
	// ProbeTimeout bounds each probe request (default 2s).
	ProbeTimeout time.Duration
	// SuspectAfter / DeadAfter are the detector's failure thresholds.
	SuspectAfter int
	DeadAfter    int

	// ForwardTimeout bounds each forward request attempt (default 2s).
	ForwardTimeout time.Duration
	// ForwardRetries is the in-line retry budget per forwarded beacon
	// (default 1). Kept deliberately small: the hint log is the durable
	// fallback, so burning seconds of ingest latency on retries buys
	// nothing.
	ForwardRetries int
	// BreakerThreshold / BreakerCooldown tune the per-peer circuit
	// breaker (defaults 5 failures, 5s cooldown).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// ReadyHintBacklog is the handoff backlog above which the node
	// reports itself unready (0 disables the check).
	ReadyHintBacklog int64

	// Tracer, when set, records a distributed span per routing decision
	// for traced events (cluster.forward, handoff.hint, handoff.drain,
	// store.apply) and threads the trace context through forwards, hint
	// WAL records, and drain replay, so a beacon's whole cluster journey
	// is one connected trace. Nil disables cluster-layer tracing.
	Tracer *obs.Tracer

	// Binary, when set, encodes peer forwards and hint-drain replays
	// with the compact binary beacon codec instead of JSON. Peers that
	// do not speak it trigger HTTPSink's latched JSON fallback, so a
	// mixed-version cluster keeps flowing during a rolling upgrade.
	// Hint WAL records are written in the binary codec regardless —
	// replay dispatches on the payload version tag, so that choice never
	// strands an old backlog.
	Binary bool

	// Transport, when set, replaces the default transport for forwards
	// and probes — the fault suites inject partitions and fault
	// RoundTrippers here.
	Transport http.RoundTripper
	// Jitter passes through to the forwarders' backoff (deterministic in
	// tests).
	Jitter func() float64
	// BaseContext, when set, is threaded into every forwarder so server
	// shutdown aborts in-flight forwards; it does not affect hint
	// appends (those must complete — they are the ack).
	BaseContext func() context.Context
}

func (c *Config) defaults() error {
	if c.Self == "" {
		return fmt.Errorf("cluster: node needs a Self id")
	}
	if c.Local == nil {
		return fmt.Errorf("cluster: node needs a Local sink")
	}
	if len(c.Peers) > 0 && c.HandoffDir == "" {
		return fmt.Errorf("cluster: node with peers needs a HandoffDir")
	}
	if _, clash := c.Peers[c.Self]; clash {
		return fmt.Errorf("cluster: Peers must not contain Self (%q)", c.Self)
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 2 * time.Second
	}
	if c.ForwardRetries <= 0 {
		c.ForwardRetries = 1
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	return nil
}

// peerLink is everything the node holds per peer: the retrying HTTP
// forwarder, the breaker guarding it, the drain-class replay forwarder,
// and the drain-in-flight latch. drainSink is a separate sink so hint
// replays arrive marked X-Qtag-Class: drain — the receiving node's
// admission controller sheds them before fresh ingest when saturated,
// which keeps a partition-heal drain storm from starving live traffic.
type peerLink struct {
	id        string
	sink      *beacon.HTTPSink
	drainSink *beacon.HTTPSink
	breaker   *beacon.CircuitBreaker
	draining  atomic.Bool
}

// Node is one member of the cluster: a beacon.Sink that routes every
// event to its ring owner. Owner-local events go straight to the local
// durable chain; remote-owned events are forwarded to the owner, and
// when the owner is unreachable (breaker open, forward exhausted, or
// the detector says dead) the event is journaled as a durable hint and
// acked — hinted handoff. The probe loop replays hints when owners
// recover.
type Node struct {
	cfg      Config
	ring     *Ring
	hints    *HintLog
	detector *Detector
	links    map[string]*peerLink

	cancel context.CancelFunc
	wg     sync.WaitGroup

	localAccepted atomic.Int64
	forwarded     atomic.Int64
	forwardErrors atomic.Int64
	hinted        atomic.Int64
	drainErrors   atomic.Int64
}

// NewNode builds (but does not start) a node. With no peers it degrades
// to a pass-through around Local — single-node deployments pay nothing.
func NewNode(cfg Config) (*Node, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	ids := make([]string, 0, len(cfg.Peers)+1)
	ids = append(ids, cfg.Self)
	for id := range cfg.Peers {
		ids = append(ids, id)
	}
	ring, err := NewRing(ids, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	n := &Node{cfg: cfg, ring: ring, links: make(map[string]*peerLink, len(cfg.Peers))}
	if len(cfg.Peers) == 0 {
		return n, nil
	}
	n.hints, err = OpenHintLog(HintOptions{
		Dir:        cfg.HandoffDir,
		Fsync:      cfg.HintFsync,
		FS:         cfg.HintFS,
		DrainBatch: cfg.DrainBatch,
	})
	if err != nil {
		return nil, err
	}
	for id, url := range cfg.Peers {
		sink := &beacon.HTTPSink{
			BaseURL:     url,
			Client:      &http.Client{Transport: cfg.Transport},
			Retries:     cfg.ForwardRetries,
			Timeout:     cfg.ForwardTimeout,
			Jitter:      cfg.Jitter,
			BaseContext: cfg.BaseContext,
			Spans:       cfg.Tracer,
			Binary:      cfg.Binary,
		}
		drainSink := &beacon.HTTPSink{
			BaseURL:     url,
			Client:      &http.Client{Transport: cfg.Transport},
			Retries:     cfg.ForwardRetries,
			Timeout:     cfg.ForwardTimeout,
			Jitter:      cfg.Jitter,
			BaseContext: cfg.BaseContext,
			Spans:       cfg.Tracer,
			Class:       "drain",
			Binary:      cfg.Binary,
		}
		n.links[id] = &peerLink{
			id:        id,
			sink:      sink,
			drainSink: drainSink,
			breaker:   beacon.NewCircuitBreaker(sink, cfg.BreakerThreshold, cfg.BreakerCooldown),
		}
	}
	n.detector = NewDetector(cfg.Peers, DetectorConfig{
		ProbeTimeout: cfg.ProbeTimeout,
		SuspectAfter: cfg.SuspectAfter,
		DeadAfter:    cfg.DeadAfter,
		Transport:    cfg.Transport,
	})
	n.detector.OnRecover(func(peerID string) { n.kickDrain(peerID) })
	return n, nil
}

// Ring exposes the node's addressing ring (shared, immutable).
func (n *Node) Ring() *Ring { return n.ring }

// BreakerState reports the forwarder breaker's state for one peer
// (BreakerClosed for unknown peers).
func (n *Node) BreakerState(peerID string) beacon.BreakerState {
	if link, ok := n.links[peerID]; ok {
		return link.breaker.State()
	}
	return beacon.BreakerClosed
}

// Detector exposes the failure detector (nil for single-node).
func (n *Node) Detector() *Detector { return n.detector }

// Hints exposes the hint log (nil for single-node).
func (n *Node) Hints() *HintLog { return n.hints }

// Submit routes one beacon: local, forwarded, or hinted. It implements
// beacon.Sink, so it drops into the server's existing sink chain.
//
// The ack contract: Submit returning nil means the beacon is durable
// somewhere that will eventually count it exactly once — the local
// chain, the owner's chain, or this node's hint WAL. Only permanent
// rejections (invalid payloads the owner can never accept) and hint
// journal failures surface as errors.
func (n *Node) Submit(e beacon.Event) error {
	owner := n.ring.Owner(e.ImpressionID)
	if owner == n.cfg.Self {
		sp := n.span(e, "store.apply")
		if err := n.cfg.Local.Submit(e); err != nil {
			sp.SetError(err.Error())
			sp.End()
			return err
		}
		sp.End()
		n.localAccepted.Add(1)
		return nil
	}
	link := n.links[owner]
	if n.detector.State(owner) != PeerDead {
		fe := e
		fsp := n.span(e, "cluster.forward")
		if fsp != nil {
			fsp.SetAttr("peer", owner)
			fe.Trace = fsp.TraceParent()
		}
		err := link.breaker.Submit(fe)
		if err == nil {
			fsp.End()
			n.forwarded.Add(1)
			return nil
		}
		fsp.SetError(err.Error())
		fsp.End()
		if beacon.IsPermanent(err) {
			return err
		}
		n.forwardErrors.Add(1)
		// The hint below parents on the failed forward span, keeping the
		// causal chain forward-failed → hinted in one trace branch.
		e = fe
	}
	// Owner unreachable (dead, breaker open, or retries exhausted):
	// degrade to hinted handoff. The append is durable before we return,
	// so the ack holds across a local crash.
	hsp := n.span(e, "handoff.hint")
	if hsp != nil {
		hsp.SetAttr("peer", owner)
		// Persist the hint span's context with the record: the drain —
		// minutes or a restart later — replays as this span's child.
		e.Trace = hsp.TraceParent()
	}
	if err := n.hints.Append(owner, e); err != nil {
		hsp.SetError(err.Error())
		hsp.End()
		return fmt.Errorf("cluster: hint %s: %w", owner, err)
	}
	hsp.End()
	n.hinted.Add(1)
	return nil
}

// span opens a child span continuing a traced event's context. Untraced
// events — and nodes without a tracer — cost nothing and return nil
// (every *obs.Span method is nil-safe).
func (n *Node) span(e beacon.Event, name string) *obs.Span {
	if n.cfg.Tracer == nil || e.Trace == "" {
		return nil
	}
	return n.cfg.Tracer.StartSpanParent(e.Trace, name)
}

// Start launches the probe/drain loop. Safe to skip for single-node.
func (n *Node) Start() {
	if n.detector == nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	n.cancel = cancel
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		t := time.NewTicker(n.cfg.ProbeEvery)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				n.Tick(ctx)
			}
		}
	}()
}

// Tick runs one probe round and kicks drains for every alive peer with
// a backlog. Deterministic tests call it directly instead of Start.
func (n *Node) Tick(ctx context.Context) {
	if n.detector == nil {
		return
	}
	n.detector.Tick(ctx)
	for id := range n.links {
		if n.detector.State(id) == PeerAlive && n.hints.Pending(id) > 0 {
			n.kickDrain(id)
		}
	}
}

// kickDrain starts a background drain for peerID unless one is already
// in flight.
func (n *Node) kickDrain(peerID string) {
	link, ok := n.links[peerID]
	if !ok || n.hints.Pending(peerID) == 0 {
		return
	}
	if !link.draining.CompareAndSwap(false, true) {
		return
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		defer link.draining.Store(false)
		n.drain(link)
	}()
}

// drain replays peerID's backlog through the raw forwarder (not the
// breaker: the probe just said the peer is back, and a half-open
// breaker would reject most of the batch). Errors abort the drain;
// whatever was not delivered stays pending for the next probe round.
func (n *Node) drain(link *peerLink) {
	_, err := n.hints.Drain(link.id, n.drainForward(link))
	if err != nil {
		n.drainErrors.Add(1)
	}
}

// drainForward builds the hint-replay delivery function for one peer.
// Each traced hint replays inside a "handoff.drain" span that parents
// on the hint span persisted in the WAL record, relinking the delayed
// replay to the beacon's original trace.
func (n *Node) drainForward(link *peerLink) func([]beacon.Event) error {
	return func(events []beacon.Event) error {
		var spans []*obs.Span
		if n.cfg.Tracer != nil {
			spans = make([]*obs.Span, 0, len(events))
			for i := range events {
				if events[i].Trace == "" {
					continue
				}
				sp := n.cfg.Tracer.StartSpanParent(events[i].Trace, "handoff.drain")
				sp.SetAttr("peer", link.id)
				events[i].Trace = sp.TraceParent()
				spans = append(spans, sp)
			}
		}
		err := link.drainSink.SubmitBatch(events)
		for _, sp := range spans {
			if err != nil {
				sp.SetError(err.Error())
			}
			sp.End()
		}
		return err
	}
}

// DrainNow synchronously drains one peer (tests and shutdown paths).
func (n *Node) DrainNow(peerID string) (int, error) {
	link, ok := n.links[peerID]
	if !ok {
		return 0, fmt.Errorf("cluster: unknown peer %q", peerID)
	}
	return n.hints.Drain(peerID, n.drainForward(link))
}

// Readiness returns the node's readiness check for Server.SetReadiness:
// unready while the hint backlog exceeds ReadyHintBacklog, because a
// node buried in undelivered hints is accepting writes it cannot yet
// place with their owners.
func (n *Node) Readiness() func() error {
	return func() error {
		if n.hints == nil || n.cfg.ReadyHintBacklog <= 0 {
			return nil
		}
		if p := n.hints.TotalPending(); p > n.cfg.ReadyHintBacklog {
			return fmt.Errorf("hint backlog %d exceeds %d", p, n.cfg.ReadyHintBacklog)
		}
		return nil
	}
}

// Close stops the probe loop and waits for in-flight drains, then
// closes the hint log.
func (n *Node) Close() error {
	if n.cancel != nil {
		n.cancel()
	}
	n.wg.Wait()
	if n.hints != nil {
		return n.hints.Close()
	}
	return nil
}

// Stats is a point-in-time routing counter snapshot.
type Stats struct {
	LocalAccepted int64 `json:"local_accepted"`
	Forwarded     int64 `json:"forwarded"`
	ForwardErrors int64 `json:"forward_errors"`
	Hinted        int64 `json:"hinted"`
	HintsReplayed int64 `json:"hints_replayed"`
	HintBacklog   int64 `json:"hint_backlog"`
	DrainErrors   int64 `json:"drain_errors"`
}

// Stats snapshots the node's routing counters.
func (n *Node) Stats() Stats {
	s := Stats{
		LocalAccepted: n.localAccepted.Load(),
		Forwarded:     n.forwarded.Load(),
		ForwardErrors: n.forwardErrors.Load(),
		Hinted:        n.hinted.Load(),
		DrainErrors:   n.drainErrors.Load(),
	}
	if n.hints != nil {
		s.HintsReplayed = n.hints.Replayed()
		s.HintBacklog = n.hints.TotalPending()
	}
	return s
}

// RegisterMetrics exposes the qtag_cluster_* metric family on r,
// including per-peer state and backlog gauges.
func (n *Node) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("qtag_cluster_local_accepted_total",
		"Beacons routed to the local store (this node owns them).",
		n.localAccepted.Load)
	r.CounterFunc("qtag_cluster_forwarded_total",
		"Beacons forwarded to their owner node.",
		n.forwarded.Load)
	r.CounterFunc("qtag_cluster_forward_errors_total",
		"Forward attempts that exhausted retries or hit an open breaker.",
		n.forwardErrors.Load)
	r.CounterFunc("qtag_cluster_hints_written_total",
		"Beacons journaled to hinted handoff.",
		n.hinted.Load)
	r.CounterFunc("qtag_cluster_drain_errors_total",
		"Hint drains aborted by forward failures.",
		n.drainErrors.Load)
	if n.hints != nil {
		r.CounterFunc("qtag_cluster_hints_replayed_total",
			"Hints successfully replayed to recovered owners.",
			n.hints.Replayed)
		r.GaugeFunc("qtag_cluster_hint_backlog",
			"Hints pending delivery, all peers.",
			func() float64 { return float64(n.hints.TotalPending()) })
	}
	if n.detector != nil {
		r.CounterFunc("qtag_cluster_probes_total",
			"Health probes sent.",
			func() int64 { p, _ := n.detector.Probes(); return p })
		r.CounterFunc("qtag_cluster_probe_failures_total",
			"Health probes failed.",
			func() int64 { _, f := n.detector.Probes(); return f })
	}
	for id, link := range n.links {
		id, link := id, link
		r.GaugeFunc("qtag_cluster_peer_state",
			"Peer state per the failure detector (0 alive, 1 suspect, 2 dead).",
			func() float64 { return float64(n.detector.State(id)) },
			obs.Label{Name: "peer", Value: id})
		r.GaugeFunc("qtag_cluster_peer_hint_backlog",
			"Hints pending delivery to this peer.",
			func() float64 { return float64(n.hints.Pending(id)) },
			obs.Label{Name: "peer", Value: id})
		r.GaugeFunc("qtag_cluster_peer_breaker_state",
			"Forwarder breaker state (0 closed, 1 open, 2 half-open).",
			func() float64 { return float64(link.breaker.State()) },
			obs.Label{Name: "peer", Value: id})
	}
}

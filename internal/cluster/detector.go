package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"qtag/internal/version"
)

// PeerState is a peer's health as seen by the local failure detector.
type PeerState int

const (
	// PeerAlive: the last probe (or no probe yet — nodes start
	// optimistic) succeeded. Beacons forward directly.
	PeerAlive PeerState = iota
	// PeerSuspect: at least SuspectAfter consecutive probes failed.
	// Forwards still attempt delivery (the breaker decides), but the
	// node is on notice.
	PeerSuspect
	// PeerDead: at least DeadAfter consecutive probes failed. Forwards
	// skip the network entirely and journal straight to hinted handoff.
	PeerDead
)

func (s PeerState) String() string {
	switch s {
	case PeerAlive:
		return "alive"
	case PeerSuspect:
		return "suspect"
	case PeerDead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// DetectorConfig tunes the failure detector.
type DetectorConfig struct {
	// ProbeTimeout bounds each /healthz request (default 2s).
	ProbeTimeout time.Duration
	// SuspectAfter is the consecutive-failure count that demotes a peer
	// from alive to suspect (default 1).
	SuspectAfter int
	// DeadAfter is the consecutive-failure count that demotes a peer to
	// dead (default 3). Must be >= SuspectAfter.
	DeadAfter int
	// Transport, when set, replaces http.DefaultTransport for probes —
	// the fault suites inject partitions here.
	Transport http.RoundTripper
}

func (c *DetectorConfig) defaults() {
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 1
	}
	if c.DeadAfter < c.SuspectAfter {
		c.DeadAfter = c.SuspectAfter + 2
	}
}

// Detector probes peers' /healthz endpoints and maintains the
// alive/suspect/dead state machine per peer. It is deliberately
// synchronous at its core: Tick runs exactly one probe round (all
// peers, in parallel) and returns when every state is settled, which is
// what lets the fault suites drive it deterministically; Run is just
// Tick on a timer.
//
// State transitions are monotonic within a failure streak
// (alive→suspect→dead as consecutive failures accumulate) and any
// single success resets straight to alive. The recovery edge
// (suspect/dead → alive) fires the OnRecover callback — that is the
// hook hinted-handoff replay hangs off.
type Detector struct {
	cfg    DetectorConfig
	client *http.Client

	mu    sync.Mutex
	peers map[string]*peerHealth

	// onRecover is called (outside the detector lock, from Tick's
	// goroutine) each time a peer transitions back to alive from
	// suspect or dead.
	onRecover func(peerID string)
	// onChange is called on every state transition, for metrics/logs.
	onChange func(peerID string, from, to PeerState)

	probes   int64 // total probes sent (under mu)
	failures int64 // total failed probes (under mu)
}

type peerHealth struct {
	url      string
	state    PeerState
	failures int // consecutive
}

// NewDetector builds a detector over the given peers (id → base URL).
// All peers start alive: a freshly joined node should try the network
// before writing hints.
func NewDetector(peers map[string]string, cfg DetectorConfig) *Detector {
	cfg.defaults()
	d := &Detector{
		cfg:   cfg,
		peers: make(map[string]*peerHealth, len(peers)),
		client: &http.Client{
			Timeout:   cfg.ProbeTimeout,
			Transport: cfg.Transport,
		},
	}
	for id, url := range peers {
		d.peers[id] = &peerHealth{url: url, state: PeerAlive}
	}
	return d
}

// OnRecover installs the recovery callback. Must be set before the
// probe loop starts.
func (d *Detector) OnRecover(fn func(peerID string)) { d.onRecover = fn }

// OnChange installs the transition callback. Must be set before the
// probe loop starts.
func (d *Detector) OnChange(fn func(peerID string, from, to PeerState)) { d.onChange = fn }

// State returns the current state of a peer (PeerDead for unknown IDs:
// an unknown peer is not a delivery target).
func (d *Detector) State(peerID string) PeerState {
	d.mu.Lock()
	defer d.mu.Unlock()
	if p, ok := d.peers[peerID]; ok {
		return p.state
	}
	return PeerDead
}

// States returns a snapshot of all peer states.
func (d *Detector) States() map[string]PeerState {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]PeerState, len(d.peers))
	for id, p := range d.peers {
		out[id] = p.state
	}
	return out
}

// Probes returns (total probes, total failures) since construction.
func (d *Detector) Probes() (int64, int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.probes, d.failures
}

// Tick runs one synchronous probe round: every peer is probed in
// parallel, states are updated, and transition callbacks fire before
// Tick returns. Deterministic drivers (tests) call it directly; Run
// calls it on a timer.
func (d *Detector) Tick(ctx context.Context) {
	d.mu.Lock()
	ids := make([]string, 0, len(d.peers))
	urls := make([]string, 0, len(d.peers))
	for id, p := range d.peers {
		ids = append(ids, id)
		urls = append(urls, p.url)
	}
	d.mu.Unlock()
	// Probe in a fixed order so callback sequences are reproducible.
	sort.Sort(&byID{ids, urls})

	results := make([]error, len(ids))
	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = d.probe(ctx, urls[i])
		}(i)
	}
	wg.Wait()

	type transition struct {
		id       string
		from, to PeerState
	}
	var trans []transition
	d.mu.Lock()
	for i, id := range ids {
		p := d.peers[id]
		d.probes++
		from := p.state
		if results[i] == nil {
			p.failures = 0
			p.state = PeerAlive
		} else {
			d.failures++
			p.failures++
			switch {
			case p.failures >= d.cfg.DeadAfter:
				p.state = PeerDead
			case p.failures >= d.cfg.SuspectAfter:
				p.state = PeerSuspect
			}
		}
		if p.state != from {
			trans = append(trans, transition{id, from, p.state})
		}
	}
	d.mu.Unlock()

	for _, tr := range trans {
		if d.onChange != nil {
			d.onChange(tr.id, tr.from, tr.to)
		}
		if tr.to == PeerAlive && d.onRecover != nil {
			d.onRecover(tr.id)
		}
	}
}

func (d *Detector) probe(ctx context.Context, baseURL string) error {
	ctx, cancel := context.WithTimeout(ctx, d.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	// Probes identify themselves so access logs and traffic accounting
	// can tell cluster-internal health checks from real clients.
	req.Header.Set("User-Agent", version.ProbeUserAgent())
	resp, err := d.client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: probe status %d", resp.StatusCode)
	}
	return nil
}

// Run calls Tick every interval until ctx is cancelled.
func (d *Detector) Run(ctx context.Context, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			d.Tick(ctx)
		}
	}
}

// byID sorts parallel id/url slices by id.
type byID struct {
	ids  []string
	urls []string
}

func (s *byID) Len() int           { return len(s.ids) }
func (s *byID) Less(i, j int) bool { return s.ids[i] < s.ids[j] }
func (s *byID) Swap(i, j int) {
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	s.urls[i], s.urls[j] = s.urls[j], s.urls[i]
}

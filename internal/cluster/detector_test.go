package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyPeer is an httptest server whose /healthz can be switched
// between healthy and failing.
type flakyPeer struct {
	srv  *httptest.Server
	down atomic.Bool
}

func newFlakyPeer(t *testing.T) *flakyPeer {
	t.Helper()
	p := &flakyPeer{}
	p.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			http.NotFound(w, r)
			return
		}
		if p.down.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(p.srv.Close)
	return p
}

func TestDetectorStateMachine(t *testing.T) {
	peer := newFlakyPeer(t)
	d := NewDetector(map[string]string{"p": peer.srv.URL}, DetectorConfig{
		ProbeTimeout: time.Second,
		SuspectAfter: 1,
		DeadAfter:    3,
	})

	var transitions []string
	d.OnChange(func(id string, from, to PeerState) {
		transitions = append(transitions, from.String()+"->"+to.String())
	})
	recovered := 0
	d.OnRecover(func(id string) { recovered++ })

	ctx := context.Background()
	if got := d.State("p"); got != PeerAlive {
		t.Fatalf("initial state = %v, want alive (optimistic start)", got)
	}
	d.Tick(ctx)
	if got := d.State("p"); got != PeerAlive {
		t.Fatalf("after healthy probe = %v, want alive", got)
	}

	peer.down.Store(true)
	d.Tick(ctx)
	if got := d.State("p"); got != PeerSuspect {
		t.Fatalf("after 1 failure = %v, want suspect", got)
	}
	d.Tick(ctx)
	if got := d.State("p"); got != PeerSuspect {
		t.Fatalf("after 2 failures = %v, want still suspect", got)
	}
	d.Tick(ctx)
	if got := d.State("p"); got != PeerDead {
		t.Fatalf("after 3 failures = %v, want dead", got)
	}

	// One success resets straight to alive and fires the recovery hook.
	peer.down.Store(false)
	d.Tick(ctx)
	if got := d.State("p"); got != PeerAlive {
		t.Fatalf("after recovery probe = %v, want alive", got)
	}
	if recovered != 1 {
		t.Fatalf("OnRecover fired %d times, want 1", recovered)
	}
	want := []string{"alive->suspect", "suspect->dead", "dead->alive"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}

	probes, failures := d.Probes()
	if probes != 5 || failures != 3 {
		t.Fatalf("probes/failures = %d/%d, want 5/3", probes, failures)
	}
}

func TestDetectorUnreachablePeerGoesDead(t *testing.T) {
	// A peer whose socket refuses connections (not just 5xx) must follow
	// the same path to dead.
	d := NewDetector(map[string]string{"gone": "http://127.0.0.1:1"}, DetectorConfig{
		ProbeTimeout: 200 * time.Millisecond,
		SuspectAfter: 1,
		DeadAfter:    2,
	})
	ctx := context.Background()
	d.Tick(ctx)
	d.Tick(ctx)
	if got := d.State("gone"); got != PeerDead {
		t.Fatalf("unreachable peer = %v, want dead", got)
	}
	states := d.States()
	if states["gone"] != PeerDead {
		t.Fatalf("States() = %v", states)
	}
	// Unknown peers read as dead: never a delivery target.
	if got := d.State("never-heard-of-it"); got != PeerDead {
		t.Fatalf("unknown peer = %v, want dead", got)
	}
}

package cluster

// The acceptance suite for cluster mode: deterministic whole-node kill
// and partition sweeps over a real 3-node in-process cluster (real
// sockets, real WALs), proving the invariant the layer exists for —
// every beacon acked by any live node is counted exactly once
// cluster-wide after recovery, hinted-handoff replay included.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"qtag/internal/beacon"
)

// fastHarness starts a 3-node cluster tuned for sub-second failover.
func fastHarness(t *testing.T) *Harness {
	t.Helper()
	h, err := StartHarness(HarnessConfig{
		Dir:              t.TempDir(),
		Nodes:            3,
		ProbeEvery:       20 * time.Millisecond,
		ProbeTimeout:     250 * time.Millisecond,
		SuspectAfter:     1,
		DeadAfter:        2,
		ForwardTimeout:   500 * time.Millisecond,
		ForwardRetries:   1,
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	return h
}

// sweepEvent builds the i-th impression's event pair: a served beacon
// and a qtag loaded check-in.
func sweepEvents(i int) []beacon.Event {
	imp := fmt.Sprintf("sweep-%05d", i)
	at := time.Unix(1500000000, 0).UTC()
	return []beacon.Event{
		{ImpressionID: imp, CampaignID: "c1", Type: beacon.EventServed, At: at},
		{ImpressionID: imp, CampaignID: "c1", Source: beacon.SourceQTag, Type: beacon.EventLoaded, At: at.Add(time.Second)},
	}
}

// sendAcked submits events round-robin across the currently live nodes
// and records which were acked (HTTP 200 end-to-end). Unacked events
// are allowed to be lost; acked ones are not.
func sendAcked(t *testing.T, h *Harness, from, to int, acked map[string]bool) {
	t.Helper()
	urls := h.LiveURLs()
	if len(urls) == 0 {
		t.Fatal("no live nodes to send to")
	}
	sinks := make([]*beacon.HTTPSink, len(urls))
	for i, u := range urls {
		sinks[i] = &beacon.HTTPSink{BaseURL: u, Retries: 2, Timeout: 2 * time.Second}
	}
	for i := from; i < to; i++ {
		sink := sinks[i%len(sinks)]
		for _, e := range sweepEvents(i) {
			if err := sink.Submit(e); err == nil {
				acked[e.Key()] = true
			}
		}
	}
}

// waitState polls until observer's detector sees peer in want.
func waitState(t *testing.T, h *Harness, observer int, peer string, want PeerState) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		hn := h.Nodes[observer]
		if hn.alive && hn.Node.Detector().State(peer) == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("node %d never saw %s as %v", observer, peer, want)
}

func TestClusterKillSweepNoLossNoDuplicates(t *testing.T) {
	h := fastHarness(t)
	acked := make(map[string]bool)

	// The sweep: kill each node in turn at a deterministic traffic
	// offset, keep ingesting through the survivors (the victim's share
	// degrades to hinted handoff), restart the victim, and only then
	// move to the next victim. 3 victims × (pre-kill + during-kill)
	// batches.
	const batch = 80
	offset := 0
	for victim := 0; victim < 3; victim++ {
		sendAcked(t, h, offset, offset+batch, acked)
		offset += batch

		if err := h.Kill(victim); err != nil {
			t.Fatalf("kill n%d: %v", victim, err)
		}
		// Wait until a survivor marks the victim dead so its share of
		// the traffic below definitively exercises the hint path.
		observer := (victim + 1) % 3
		waitState(t, h, observer, fmt.Sprintf("n%d", victim), PeerDead)

		sendAcked(t, h, offset, offset+batch, acked)
		offset += batch

		if err := h.Restart(victim); err != nil {
			t.Fatalf("restart n%d: %v", victim, err)
		}
		waitState(t, h, observer, fmt.Sprintf("n%d", victim), PeerAlive)
	}

	// Let every hint drain, then check the invariant.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := h.WaitDrained(ctx); err != nil {
		t.Fatal(err)
	}

	if len(acked) == 0 {
		t.Fatal("no events were acked; sweep exercised nothing")
	}
	counts := h.ClusterEvents()
	missing, duplicated := 0, 0
	for key := range acked {
		switch counts[key] {
		case 1:
		case 0:
			missing++
			t.Errorf("acked event lost: %s", key)
		default:
			duplicated++
			t.Errorf("acked event counted %d times: %s", counts[key], key)
		}
	}
	// Zero duplicates holds for UNacked events too: ownership is unique,
	// so no key may appear in two stores.
	for key, c := range counts {
		if c > 1 {
			t.Errorf("event stored %d times cluster-wide: %s", c, key)
		}
	}
	if missing > 0 || duplicated > 0 {
		t.Fatalf("invariant broken: %d acked lost, %d duplicated (of %d acked)", missing, duplicated, len(acked))
	}
	t.Logf("sweep: %d events acked across 3 kills, all recovered exactly once", len(acked))
}

func TestClusterPartitionHealsAndDrains(t *testing.T) {
	h := fastHarness(t)

	// Cut n0 ↔ n2 both ways. n0 can still serve ingest; its n2-owned
	// share must degrade to hints instead of erroring.
	h.Net.CutBoth("n0", "n2")
	waitState(t, h, 0, "n2", PeerDead)

	acked := make(map[string]bool)
	sink := &beacon.HTTPSink{BaseURL: h.Nodes[0].URL, Retries: 2, Timeout: 2 * time.Second}
	n2owned := 0
	ring := h.Nodes[0].Node.Ring()
	for i := 0; i < 150; i++ {
		for _, e := range sweepEvents(i) {
			if err := sink.Submit(e); err != nil {
				t.Fatalf("submit during partition failed: %v", err)
			}
			acked[e.Key()] = true
			if ring.Owner(e.ImpressionID) == "n2" {
				n2owned++
			}
		}
	}
	if n2owned == 0 {
		t.Fatal("no events owned by the partitioned node; sweep proves nothing")
	}
	if got := h.Nodes[0].Node.Stats().Hinted; got == 0 {
		t.Fatal("partition produced no hints")
	}

	h.Net.HealBoth("n0", "n2")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := h.WaitDrained(ctx); err != nil {
		t.Fatal(err)
	}

	counts := h.ClusterEvents()
	for key := range acked {
		if counts[key] != 1 {
			t.Fatalf("acked event %s counted %d times after heal", key, counts[key])
		}
	}
}

func TestClusterFederatedReportMergesAndDegrades(t *testing.T) {
	h := fastHarness(t)
	acked := make(map[string]bool)
	sendAcked(t, h, 0, 120, acked)

	fetch := func(url string) (FederatedReport, int) {
		resp, err := http.Get(url + "/report?federated=1")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rep FederatedReport
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatal(err)
		}
		return rep, resp.StatusCode
	}

	// Healthy cluster: all three nodes contribute, nothing degraded,
	// and the merged counts equal ground truth summed over the stores.
	rep, status := fetch(h.Nodes[0].URL)
	if status != http.StatusOK {
		t.Fatalf("federated report status %d", status)
	}
	if len(rep.Nodes) != 3 || len(rep.Degraded) != 0 {
		t.Fatalf("nodes=%v degraded=%v, want 3 nodes none degraded", rep.Nodes, rep.Degraded)
	}
	wantMeasured := 0
	for _, hn := range h.Nodes {
		wantMeasured += hn.Store.Loaded("", beacon.SourceQTag)
	}
	if len(rep.Campaigns.Rows) != 1 {
		t.Fatalf("federated rows = %d, want 1", len(rep.Campaigns.Rows))
	}
	if got := rep.Campaigns.Rows[0].Sources["qtag"].Measured; got != int64(wantMeasured) {
		t.Fatalf("federated measured = %d, want %d (sum of node stores)", got, wantMeasured)
	}

	// Kill one node: the report must stay HTTP 200, name the dead node
	// in degraded, and shrink to the survivors' slice — partial result,
	// not an error.
	if err := h.Kill(2); err != nil {
		t.Fatal(err)
	}
	rep, status = fetch(h.Nodes[0].URL)
	if status != http.StatusOK {
		t.Fatalf("degraded federated report status %d, want 200", status)
	}
	if len(rep.Degraded) != 1 || rep.Degraded[0] != "n2" {
		t.Fatalf("degraded = %v, want [n2]", rep.Degraded)
	}
	if len(rep.Nodes) != 2 {
		t.Fatalf("nodes = %v, want the 2 survivors", rep.Nodes)
	}
	survivors := h.Nodes[0].Store.Loaded("", beacon.SourceQTag) + h.Nodes[1].Store.Loaded("", beacon.SourceQTag)
	if got := rep.Campaigns.Rows[0].Sources["qtag"].Measured; got != int64(survivors) {
		t.Fatalf("degraded federated measured = %d, want %d", got, survivors)
	}
}

func TestClusterReadinessReflectsHintBacklog(t *testing.T) {
	h, err := StartHarness(HarnessConfig{
		Dir:              t.TempDir(),
		Nodes:            2,
		ProbeEvery:       20 * time.Millisecond,
		ProbeTimeout:     200 * time.Millisecond,
		SuspectAfter:     1,
		DeadAfter:        2,
		ForwardTimeout:   300 * time.Millisecond,
		ReadyHintBacklog: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	readyz := func() int {
		resp, rerr := http.Get(h.Nodes[0].URL + "/readyz")
		if rerr != nil {
			t.Fatal(rerr)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := readyz(); got != http.StatusOK {
		t.Fatalf("fresh node readyz = %d, want 200", got)
	}

	// Partition n1 away and push enough n1-owned traffic through n0 to
	// exceed the backlog threshold.
	h.Net.CutBoth("n0", "n1")
	waitState(t, h, 0, "n1", PeerDead)
	ring := h.Nodes[0].Node.Ring()
	sink := &beacon.HTTPSink{BaseURL: h.Nodes[0].URL, Retries: 1, Timeout: time.Second}
	sent := 0
	for i := 0; sent < 10; i++ {
		imp := fmt.Sprintf("ready-%05d", i)
		if ring.Owner(imp) != "n1" {
			continue
		}
		e := beacon.Event{ImpressionID: imp, CampaignID: "c1", Source: beacon.SourceQTag,
			Type: beacon.EventLoaded, At: time.Unix(1000, 0)}
		if err := sink.Submit(e); err != nil {
			t.Fatal(err)
		}
		sent++
	}
	if got := readyz(); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz with backlog %d = %d, want 503", h.Nodes[0].Node.Stats().HintBacklog, got)
	}
	// Liveness is unaffected: /healthz keeps saying 200 so the prober
	// doesn't kill a node that is merely backlogged.
	resp, err := http.Get(h.Nodes[0].URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during backlog = %d, want 200", resp.StatusCode)
	}

	// Heal; once hints drain the node reports ready again.
	h.Net.HealBoth("n0", "n1")
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := h.WaitDrained(ctx); err != nil {
		t.Fatal(err)
	}
	if got := readyz(); got != http.StatusOK {
		t.Fatalf("readyz after drain = %d, want 200", got)
	}
}

package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"qtag/internal/aggregate"
	"qtag/internal/obs"
	"qtag/internal/report"
)

// FederatedReport is the GET /report?federated=1 payload: the cluster-
// wide merge of every reachable node's snapshot. Degraded lists the
// nodes whose snapshot could not be fetched within the deadline — the
// report is explicitly partial rather than failing closed, because a
// campaign dashboard that 500s during a single-node outage is worse
// than one that says which slice is missing.
type FederatedReport struct {
	GeneratedAt     time.Time          `json:"generated_at"`
	Nodes           []string           `json:"nodes"`
	Degraded        []string           `json:"degraded,omitempty"`
	Campaigns       aggregate.Snapshot `json:"campaigns"`
	OpenImpressions int                `json:"open_impressions"`
	Evicted         int64              `json:"evicted_impression_states"`
}

// FederationConfig tunes the fan-out.
type FederationConfig struct {
	// Self is this node's ID (appears in Nodes).
	Self string
	// Peers maps peer ID → base URL; each is asked for its local
	// /report.
	Peers map[string]string
	// PerPeerTimeout bounds each peer fetch (default 2s). A slow peer
	// becomes a degraded entry, never a slow report.
	PerPeerTimeout time.Duration
	// Transport, when set, replaces the default transport (fault
	// injection seam).
	Transport http.RoundTripper
	// Now is the report clock (time.Now when nil).
	Now func() time.Time
	// Tracer, when set, wraps each federated fan-out in a
	// "report.federate" span with one "federate.fetch" child per peer,
	// and injects the child's traceparent on the peer request.
	Tracer *obs.Tracer
}

// FederatedHandler wraps the plain single-node report handler: without
// ?federated=1 it is exactly report.Handler; with it, the handler fans
// out to every peer's plain /report (windows suppressed — rollup
// windows don't merge across nodes), merges the snapshots with
// aggregate.Merge, and marks unreachable peers in Degraded.
//
// Peers are always asked for their PLAIN report, so federation never
// recurses: a two-node cluster asking each other federated reports
// would otherwise ping-pong forever.
func FederatedHandler(a *aggregate.Aggregator, cfg FederationConfig) http.Handler {
	if cfg.PerPeerTimeout <= 0 {
		cfg.PerPeerTimeout = 2 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	plain := report.Handler(a, cfg.Now)
	client := &http.Client{Transport: cfg.Transport}
	return &federatedHandler{a: a, cfg: cfg, plain: plain, client: client}
}

type federatedHandler struct {
	a      *aggregate.Aggregator
	cfg    FederationConfig
	plain  http.Handler
	client *http.Client

	// PartialReports counts federated responses that had at least one
	// degraded peer (exposed for metrics).
	partial atomic.Int64
}

// PartialReports returns how many federated responses were partial.
func (h *federatedHandler) PartialReports() int64 { return h.partial.Load() }

func (h *federatedHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("federated") != "1" {
		h.plain.ServeHTTP(w, r)
		return
	}

	// The fan-out span continues the request's server span when the
	// report route is mounted behind obs.TraceMiddleware, else the raw
	// inbound traceparent, else roots a new trace.
	parent := obs.SpanFromContext(r.Context()).Context()
	if !parent.Valid() {
		parent, _ = obs.ParseTraceParent(r.Header.Get(obs.TraceParentHeader))
	}
	fsp := h.cfg.Tracer.StartSpan(parent, "report.federate")
	defer fsp.End()

	type peerResult struct {
		id  string
		rep report.ViewabilityReport
		err error
	}
	results := make([]peerResult, 0, len(h.cfg.Peers))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for id, url := range h.cfg.Peers {
		wg.Add(1)
		go func(id, url string) {
			defer wg.Done()
			psp := h.cfg.Tracer.StartSpan(fsp.Context(), "federate.fetch")
			psp.SetAttr("peer", id)
			rep, err := h.fetch(r.Context(), url, psp.TraceParent())
			if err != nil {
				psp.SetError(err.Error())
			}
			psp.End()
			mu.Lock()
			results = append(results, peerResult{id: id, rep: rep, err: err})
			mu.Unlock()
		}(id, url)
	}
	local := report.ViewabilityReport{
		Campaigns:       h.a.Snapshot(),
		OpenImpressions: h.a.OpenImpressions(),
		Evicted:         h.a.Evicted(),
	}
	wg.Wait()

	out := FederatedReport{
		GeneratedAt: h.cfg.Now().UTC(),
		Nodes:       []string{h.cfg.Self},
	}
	snaps := []aggregate.Snapshot{local.Campaigns}
	out.OpenImpressions = local.OpenImpressions
	out.Evicted = local.Evicted
	for _, res := range results {
		if res.err != nil {
			out.Degraded = append(out.Degraded, res.id)
			continue
		}
		out.Nodes = append(out.Nodes, res.id)
		snaps = append(snaps, res.rep.Campaigns)
		out.OpenImpressions += res.rep.OpenImpressions
		out.Evicted += res.rep.Evicted
	}
	sort.Strings(out.Nodes)
	sort.Strings(out.Degraded)
	out.Campaigns = aggregate.Merge(snaps...)
	fsp.SetAttr("peers", strconv.Itoa(len(h.cfg.Peers)))
	fsp.SetAttr("degraded", strconv.Itoa(len(out.Degraded)))
	if len(out.Degraded) > 0 {
		h.partial.Add(1)
		fsp.SetError(fmt.Sprintf("%d of %d peers degraded", len(out.Degraded), len(h.cfg.Peers)))
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// fetch pulls one peer's plain report under the per-peer deadline,
// propagating the fetch span's traceparent when tracing is active.
func (h *federatedHandler) fetch(ctx context.Context, baseURL, traceparent string) (report.ViewabilityReport, error) {
	var rep report.ViewabilityReport
	ctx, cancel := context.WithTimeout(ctx, h.cfg.PerPeerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/report?windows=0", nil)
	if err != nil {
		return rep, err
	}
	if traceparent != "" {
		req.Header.Set(obs.TraceParentHeader, traceparent)
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return rep, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return rep, fmt.Errorf("cluster: peer report status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return rep, err
	}
	return rep, nil
}

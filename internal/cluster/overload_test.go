package cluster

// The overload acceptance suite (make overload-chaos): a 3-node cluster
// with admission control enabled takes a 10× load ramp concurrent with
// a partition-heal drain storm, and must (1) lose no acked beacon, (2)
// keep live goodput inside a band of the pre-ramp baseline, (3) shed
// low-priority classes measurably harder than live ingest, and (4)
// report every node /readyz 200 within a bounded window once the load
// subsides.

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qtag/internal/admission"
	"qtag/internal/beacon"
)

// overloadHarness is fastHarness plus admission control tuned so a
// burst of in-process workers actually trips the limiter: a small
// ceiling, and a short recovery hold so the post-storm readiness
// assertion doesn't dominate the test's runtime.
func overloadHarness(t *testing.T) *Harness {
	t.Helper()
	h, err := StartHarness(HarnessConfig{
		Dir:              t.TempDir(),
		Nodes:            3,
		ProbeEvery:       20 * time.Millisecond,
		ProbeTimeout:     250 * time.Millisecond,
		SuspectAfter:     1,
		DeadAfter:        2,
		ForwardTimeout:   500 * time.Millisecond,
		ForwardRetries:   1,
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
		Admission:        true,
		// MinLimit is the goodput floor: under a sustained ramp the
		// gradient drives the limit down toward it (cross-node forwards
		// inherit their peers' queuing latency, so the signal saturates),
		// and the floor is what keeps "degrade" from becoming "collapse".
		AdmissionLimiter: admission.LimiterConfig{
			MinLimit:     8,
			MaxLimit:     64,
			InitialLimit: 16,
		},
		AdmissionRecoveryHold: 300 * time.Millisecond,
		// A shedding peer's Retry-After is the origin's forward-retry
		// backoff, i.e. how long an admitted forward squats on its
		// origin's admission slot before failing over to hinted handoff.
		// Keep it short so overload degrades to shed-and-hint instead of
		// slot starvation.
		AdmissionRetryAfter: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	return h
}

// ackedSet is a concurrent set of acked idempotency keys.
type ackedSet struct {
	mu   sync.Mutex
	keys map[string]bool
}

func (s *ackedSet) add(key string) {
	s.mu.Lock()
	s.keys[key] = true
	s.mu.Unlock()
}

// runLivePhase floods the cluster with unique live beacons from workers
// concurrent senders for d, round-robin across nodes, and returns
// (acked, shed) counts. Acked keys land in set. No retries: a 503 is a
// shed, and the test's loss invariant only covers acked events.
func runLivePhase(t *testing.T, h *Harness, prefix string, workers int, d time.Duration, set *ackedSet) (acked, shed int64) {
	t.Helper()
	urls := h.LiveURLs()
	var ackedN, shedN atomic.Int64
	var seq atomic.Int64
	stop := time.Now().Add(d)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sink := &beacon.HTTPSink{
				BaseURL: urls[w%len(urls)],
				Retries: 0,
				Timeout: 2 * time.Second,
			}
			for time.Now().Before(stop) {
				i := seq.Add(1)
				e := beacon.Event{
					ImpressionID: fmt.Sprintf("%s-%07d", prefix, i),
					CampaignID:   "c1",
					Source:       beacon.SourceQTag,
					Type:         beacon.EventLoaded,
					At:           time.Unix(1600000000, 0).UTC(),
				}
				if err := sink.Submit(e); err == nil {
					ackedN.Add(1)
					set.add(e.Key())
				} else {
					shedN.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	return ackedN.Load(), shedN.Load()
}

// hammer spams url+path with plain GETs from workers goroutines until
// stop, returning how many answered 503. Used to keep the federate and
// debug classes under offered load during the ramp.
func hammer(stop time.Time, workers int, urls []string, path string, shed *atomic.Int64) *sync.WaitGroup {
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 2 * time.Second}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for time.Now().Before(stop) {
				resp, err := client.Get(urls[w%len(urls)] + path)
				if err != nil {
					continue
				}
				if resp.StatusCode == http.StatusServiceUnavailable {
					shed.Add(1)
				}
				resp.Body.Close()
			}
		}(w)
	}
	return &wg
}

func TestOverloadRampSurvivesWithPriorityShedding(t *testing.T) {
	h := overloadHarness(t)
	set := &ackedSet{keys: make(map[string]bool)}

	// Phase 1 — baseline: light load, no shedding expected.
	const baseWorkers = 4
	baseDur := 800 * time.Millisecond
	baseAcked, baseShed := runLivePhase(t, h, "base", baseWorkers, baseDur, set)
	if baseAcked == 0 {
		t.Fatal("baseline acked nothing; harness is broken")
	}
	t.Logf("baseline: %d acked, %d shed over %v", baseAcked, baseShed, baseDur)

	// Phase 2 — seed the drain storm: partition n0 ↔ n2 and push
	// n2-owned traffic through n0 so hints pile up for replay at heal.
	h.Net.CutBoth("n0", "n2")
	waitState(t, h, 0, "n2", PeerDead)
	ring := h.Nodes[0].Node.Ring()
	seedSink := &beacon.HTTPSink{BaseURL: h.Nodes[0].URL, Retries: 2, Timeout: 2 * time.Second}
	hinted := 0
	for i := 0; hinted < 120; i++ {
		imp := fmt.Sprintf("storm-%06d", i)
		if ring.Owner(imp) != "n2" {
			continue
		}
		e := beacon.Event{ImpressionID: imp, CampaignID: "c1", Source: beacon.SourceQTag,
			Type: beacon.EventLoaded, At: time.Unix(1600000000, 0).UTC()}
		if err := seedSink.Submit(e); err != nil {
			t.Fatalf("seed submit: %v", err)
		}
		set.add(e.Key())
		hinted++
	}
	if h.Nodes[0].Node.Stats().HintBacklog == 0 {
		t.Fatal("partition seeded no hints; drain storm would be empty")
	}

	// Phase 3 — the ramp: heal the partition (kicking the drain storm at
	// n2's front door) and simultaneously offer 10× live load plus
	// sustained federate- and debug-class traffic.
	h.Net.HealBoth("n0", "n2")
	rampDur := 1500 * time.Millisecond
	stop := time.Now().Add(rampDur)
	var fedShed, dbgShed atomic.Int64
	fedWG := hammer(stop, 3, h.LiveURLs(), "/report", &fedShed)
	dbgWG := hammer(stop, 3, h.LiveURLs(), "/debug/traces", &dbgShed)
	rampAcked, rampShed := runLivePhase(t, h, "ramp", 10*baseWorkers, rampDur, set)
	fedWG.Wait()
	dbgWG.Wait()
	t.Logf("ramp: live %d acked / %d shed; federate %d shed; debug %d shed",
		rampAcked, rampShed, fedShed.Load(), dbgShed.Load())

	// Goodput band: the admitted-work rate under 10× offered load stays
	// within a generous band of baseline — overload degrades to shedding,
	// not collapse. (Rates, since the phases run for different windows.)
	baseRate := float64(baseAcked) / baseDur.Seconds()
	rampRate := float64(rampAcked) / rampDur.Seconds()
	if rampRate < 0.15*baseRate {
		t.Fatalf("goodput collapsed under ramp: %.0f/s vs baseline %.0f/s", rampRate, baseRate)
	}

	// Priority order: the cluster shed low-priority work during the ramp
	// while continuing to admit live ingest, and live's shed *rate*
	// stayed below the background classes'.
	var liveAdmitted, liveShedC, lowShed int64
	var lowOffered int64
	for _, hn := range h.Nodes {
		ctrl := hn.Admission
		liveAdmitted += ctrl.Admitted(admission.ClassLive)
		liveShedC += ctrl.Shed(admission.ClassLive)
		for _, cl := range []admission.Class{admission.ClassDrain, admission.ClassFederate, admission.ClassDebug} {
			lowShed += ctrl.Shed(cl)
			lowOffered += ctrl.Shed(cl) + ctrl.Admitted(cl)
		}
	}
	if liveAdmitted == 0 {
		t.Fatal("no live requests admitted during the test")
	}
	if lowShed == 0 {
		t.Fatal("overload shed no low-priority (drain/federate/debug) requests; priority classes untested")
	}
	liveRate := float64(liveShedC) / float64(liveShedC+liveAdmitted)
	lowRate := float64(lowShed) / float64(lowOffered)
	if lowRate <= liveRate {
		t.Fatalf("low-priority shed rate %.3f not above live shed rate %.3f", lowRate, liveRate)
	}
	t.Logf("shed rates: live %.3f, low-priority %.3f (admitted live %d)", liveRate, lowRate, liveAdmitted)

	// Phase 4 — recovery: with the load gone, every node must answer
	// /readyz 200 within a bounded window (RecoveryHold + slack), and
	// the drain storm must finish placing every hint.
	readyDeadline := time.Now().Add(10 * time.Second)
	client := &http.Client{Timeout: time.Second}
	for _, hn := range h.Nodes {
		for {
			resp, err := client.Get(hn.URL + "/readyz")
			if err == nil {
				code := resp.StatusCode
				resp.Body.Close()
				if code == http.StatusOK {
					break
				}
			}
			if time.Now().After(readyDeadline) {
				t.Fatalf("node %s not ready within bounded window after load subsided", hn.ID)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := h.WaitDrained(ctx); err != nil {
		t.Fatal(err)
	}

	// The invariant: every acked beacon — baseline, storm seed, or ramp
	// survivor — is counted exactly once cluster-wide. Shed requests were
	// never acked, so they owe nothing.
	counts := h.ClusterEvents()
	missing, duplicated := 0, 0
	set.mu.Lock()
	defer set.mu.Unlock()
	for key := range set.keys {
		switch counts[key] {
		case 1:
		case 0:
			missing++
		default:
			duplicated++
		}
	}
	if missing > 0 || duplicated > 0 {
		t.Fatalf("invariant broken: %d acked lost, %d duplicated (of %d acked)", missing, duplicated, len(set.keys))
	}
	t.Logf("overload ramp: %d acked events all recovered exactly once", len(set.keys))
}

// TestOverloadDrainReplaysArriveMarked proves the hint-replay path
// self-identifies: after a partition heals, the recovering owner's
// admission controller sees the replayed beacons in ClassDrain (the
// X-Qtag-Class header set by the drain sink), which is what lets it
// shed a drain storm before fresh ingest.
func TestOverloadDrainReplaysArriveMarked(t *testing.T) {
	h := overloadHarness(t)

	h.Net.CutBoth("n0", "n2")
	waitState(t, h, 0, "n2", PeerDead)
	ring := h.Nodes[0].Node.Ring()
	sink := &beacon.HTTPSink{BaseURL: h.Nodes[0].URL, Retries: 2, Timeout: 2 * time.Second}
	sent := 0
	for i := 0; sent < 40; i++ {
		imp := fmt.Sprintf("marked-%06d", i)
		if ring.Owner(imp) != "n2" {
			continue
		}
		e := beacon.Event{ImpressionID: imp, CampaignID: "c1", Source: beacon.SourceQTag,
			Type: beacon.EventLoaded, At: time.Unix(1600000000, 0).UTC()}
		if err := sink.Submit(e); err != nil {
			t.Fatal(err)
		}
		sent++
	}

	h.Net.HealBoth("n0", "n2")
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := h.WaitDrained(ctx); err != nil {
		t.Fatal(err)
	}

	if got := h.Nodes[2].Admission.Admitted(admission.ClassDrain); got == 0 {
		t.Fatal("n2 admitted no drain-class requests; hint replays arrived unmarked")
	}
	if got := h.Nodes[2].Admission.Admitted(admission.ClassLive); got != 0 {
		// Only replays hit n2 in this test; anything counted live means
		// the class header was dropped somewhere on the replay path.
		t.Fatalf("n2 admitted %d live-class requests, want 0 (replays only)", got)
	}
}

// TestOverloadBackstopProtectsCluster proves the journal-backlog
// backstop still works behind the adaptive limiter: with an absurdly
// low backlog ceiling, live ingest sheds 503 even though the limiter
// itself has spare capacity, and /readyz reports the brown-out.
func TestOverloadBackstopProtectsCluster(t *testing.T) {
	h, err := StartHarness(HarnessConfig{
		Dir:                   t.TempDir(),
		Nodes:                 1,
		Admission:             true,
		AdmissionBacklog:      -1, // any pending count trips it — but see below
		AdmissionRecoveryHold: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// Backlog is compared with > : with the threshold at -1 every
	// request sheds, modelling a journal that cannot keep up at all.
	sink := &beacon.HTTPSink{BaseURL: h.Nodes[0].URL, Retries: 0, Timeout: time.Second}
	err = sink.Submit(beacon.Event{ImpressionID: "bs-1", CampaignID: "c1",
		Source: beacon.SourceQTag, Type: beacon.EventLoaded, At: time.Unix(1000, 0)})
	if err == nil {
		t.Fatal("submit succeeded under tripped backstop, want 503 shed")
	}
	if got := h.Nodes[0].Admission.Shed(admission.ClassLive); got == 0 {
		t.Fatal("backstop shed not attributed to live class")
	}

	// Reads survive the backstop: it guards the WAL, not the query path.
	resp, err := http.Get(h.Nodes[0].URL + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/report under backstop = %d, want 200", resp.StatusCode)
	}

	// And the node advertises the brown-out on /readyz.
	resp, err = http.Get(h.Nodes[0].URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz under backstop = %d, want 503", resp.StatusCode)
	}
}

package cluster

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"qtag/internal/beacon"
)

// keysOwnedBy generates n impression IDs the given ring assigns to
// owner — deterministic probing, no randomness.
func keysOwnedBy(t *testing.T, r *Ring, owner string, n int) []string {
	t.Helper()
	var out []string
	for i := 0; len(out) < n; i++ {
		key := fmt.Sprintf("imp-%06d", i)
		if r.Owner(key) == owner {
			out = append(out, key)
		}
		if i > 1000000 {
			t.Fatalf("could not find %d keys owned by %s", n, owner)
		}
	}
	return out
}

func nodeEvent(imp string) beacon.Event {
	return beacon.Event{
		ImpressionID: imp,
		CampaignID:   "c1",
		Source:       beacon.SourceQTag,
		Type:         beacon.EventLoaded,
		At:           time.Unix(1000, 0),
	}
}

// startPeerServer runs a real beacon server for a peer and returns its
// store and URL.
func startPeerServer(t *testing.T) (*beacon.Store, string) {
	t.Helper()
	store := beacon.NewStore()
	srv := httptest.NewServer(beacon.NewServer(store))
	t.Cleanup(srv.Close)
	return store, srv.URL
}

func TestNodeRoutesLocalAndForwards(t *testing.T) {
	peerStore, peerURL := startPeerServer(t)
	local := beacon.NewStore()
	n, err := NewNode(Config{
		Self:       "a",
		Peers:      map[string]string{"b": peerURL},
		Local:      local,
		HandoffDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	mine := keysOwnedBy(t, n.Ring(), "a", 5)
	theirs := keysOwnedBy(t, n.Ring(), "b", 5)
	for _, k := range append(append([]string{}, mine...), theirs...) {
		if err := n.Submit(nodeEvent(k)); err != nil {
			t.Fatalf("submit %s: %v", k, err)
		}
	}
	if local.Len() != 5 {
		t.Fatalf("local store holds %d, want 5", local.Len())
	}
	if peerStore.Len() != 5 {
		t.Fatalf("peer store holds %d, want 5", peerStore.Len())
	}
	st := n.Stats()
	if st.LocalAccepted != 5 || st.Forwarded != 5 || st.Hinted != 0 {
		t.Fatalf("stats = %+v, want 5 local / 5 forwarded / 0 hinted", st)
	}
}

func TestNodeHintsWhenPeerUnreachable(t *testing.T) {
	local := beacon.NewStore()
	n, err := NewNode(Config{
		Self:           "a",
		Peers:          map[string]string{"b": "http://127.0.0.1:1"},
		Local:          local,
		HandoffDir:     t.TempDir(),
		ForwardTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	theirs := keysOwnedBy(t, n.Ring(), "b", 3)
	for _, k := range theirs {
		// The forward fails (connection refused); the hint append makes
		// the ack legitimate anyway.
		if err := n.Submit(nodeEvent(k)); err != nil {
			t.Fatalf("submit %s should ack via hint, got %v", k, err)
		}
	}
	st := n.Stats()
	if st.Hinted != 3 || st.HintBacklog != 3 {
		t.Fatalf("stats = %+v, want 3 hinted / 3 backlog", st)
	}
	if local.Len() != 0 {
		t.Fatalf("local store holds %d remote-owned events", local.Len())
	}
}

func TestNodeHintReplayOnRecovery(t *testing.T) {
	local := beacon.NewStore()
	// Peer starts dead (no listener); we bring a real server up at a
	// fixed address afterwards by starting the listener first.
	peerStore := beacon.NewStore()
	peerSrv := httptest.NewUnstartedServer(beacon.NewServer(peerStore))
	peerURL := "http://" + peerSrv.Listener.Addr().String()

	n, err := NewNode(Config{
		Self:           "a",
		Peers:          map[string]string{"b": peerURL},
		Local:          local,
		HandoffDir:     t.TempDir(),
		ForwardTimeout: 200 * time.Millisecond,
		ProbeTimeout:   200 * time.Millisecond,
		SuspectAfter:   1,
		DeadAfter:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	theirs := keysOwnedBy(t, n.Ring(), "b", 4)
	for _, k := range theirs {
		if err := n.Submit(nodeEvent(k)); err != nil {
			t.Fatal(err)
		}
	}
	if n.Stats().HintBacklog != 4 {
		t.Fatalf("backlog = %d, want 4", n.Stats().HintBacklog)
	}

	// Peer comes back; the next probe round notices and drains.
	peerSrv.Start()
	defer peerSrv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for n.Stats().HintBacklog > 0 && time.Now().Before(deadline) {
		n.Tick(context.Background())
		time.Sleep(10 * time.Millisecond)
	}
	if got := n.Stats().HintBacklog; got != 0 {
		t.Fatalf("backlog never drained: %d", got)
	}
	if peerStore.Len() != 4 {
		t.Fatalf("peer store holds %d, want 4 replayed", peerStore.Len())
	}
	if got := n.Stats().HintsReplayed; got != 4 {
		t.Fatalf("HintsReplayed = %d, want 4", got)
	}
}

func TestNodePermanentErrorPropagates(t *testing.T) {
	_, peerURL := startPeerServer(t)
	n, err := NewNode(Config{
		Self:       "a",
		Peers:      map[string]string{"b": peerURL},
		Local:      beacon.NewStore(),
		HandoffDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	// An event the owner permanently rejects (bad payload) must error
	// back to the caller, NOT be hinted: redelivering it can never
	// succeed, so journaling it would wedge the drain forever.
	bad := nodeEvent(keysOwnedBy(t, n.Ring(), "b", 1)[0])
	bad.Type = "nonsense"
	if err := n.Submit(bad); err == nil {
		t.Fatal("permanently rejected event was acked")
	}
	if got := n.Stats().Hinted; got != 0 {
		t.Fatalf("permanent rejection was hinted (%d)", got)
	}
}

func TestNodeReadinessTracksBacklog(t *testing.T) {
	n, err := NewNode(Config{
		Self:             "a",
		Peers:            map[string]string{"b": "http://127.0.0.1:1"},
		Local:            beacon.NewStore(),
		HandoffDir:       t.TempDir(),
		ForwardTimeout:   100 * time.Millisecond,
		ReadyHintBacklog: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	ready := n.Readiness()
	if err := ready(); err != nil {
		t.Fatalf("empty node unready: %v", err)
	}
	for _, k := range keysOwnedBy(t, n.Ring(), "b", 3) {
		if err := n.Submit(nodeEvent(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ready(); err == nil {
		t.Fatal("node with backlog 3 > threshold 2 reported ready")
	}
}

func TestNodeSingleNodePassThrough(t *testing.T) {
	local := beacon.NewStore()
	n, err := NewNode(Config{Self: "solo", Local: local})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.Start() // no-op without peers
	if err := n.Submit(nodeEvent("any-impression")); err != nil {
		t.Fatal(err)
	}
	if local.Len() != 1 {
		t.Fatalf("local store holds %d, want 1", local.Len())
	}
	if err := n.Readiness()(); err != nil {
		t.Fatalf("single node unready: %v", err)
	}
}

package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"qtag/internal/admission"
	"qtag/internal/aggregate"
	"qtag/internal/beacon"
	"qtag/internal/faults"
	"qtag/internal/obs"
	"qtag/internal/wal"
)

// This file is the whole-cluster fault harness: an in-process N-node
// cluster with real sockets, real WALs, and a partitionable network,
// built so the kill/partition sweeps (and make cluster-chaos) can
// murder nodes deterministically and then prove the invariant the
// cluster exists for: every beacon acked by any live node is counted
// exactly once cluster-wide after recovery.

// Partitioner is the harness network: a RoundTripper factory whose
// links can be cut per directed (from, to) pair. A cut link fails with
// faults.ErrConnDropped before any bytes move — a clean model of a
// network partition, visible to forwarders and probes alike.
type Partitioner struct {
	mu      sync.Mutex
	blocked map[string]bool // "from->hostport"
	addrs   map[string]string
	next    http.RoundTripper
}

// NewPartitioner builds a partitioner over next (http.DefaultTransport
// when nil).
func NewPartitioner(next http.RoundTripper) *Partitioner {
	if next == nil {
		next = http.DefaultTransport
	}
	return &Partitioner{blocked: make(map[string]bool), addrs: make(map[string]string), next: next}
}

func (p *Partitioner) register(nodeID, hostport string) {
	p.mu.Lock()
	p.addrs[nodeID] = hostport
	p.mu.Unlock()
}

// Cut severs the directed link from → to; Heal restores it. CutBoth /
// HealBoth do both directions.
func (p *Partitioner) Cut(from, to string) {
	p.mu.Lock()
	p.blocked[from+"->"+p.addrs[to]] = true
	p.mu.Unlock()
}

func (p *Partitioner) Heal(from, to string) {
	p.mu.Lock()
	delete(p.blocked, from+"->"+p.addrs[to])
	p.mu.Unlock()
}

func (p *Partitioner) CutBoth(a, b string)  { p.Cut(a, b); p.Cut(b, a) }
func (p *Partitioner) HealBoth(a, b string) { p.Heal(a, b); p.Heal(b, a) }

// Transport returns the RoundTripper a given node uses for all
// outbound cluster traffic (forwards, probes, federation).
func (p *Partitioner) Transport(nodeID string) http.RoundTripper {
	return partitionedTransport{p: p, from: nodeID}
}

type partitionedTransport struct {
	p    *Partitioner
	from string
	// next overrides the partitioner's shared base transport when set —
	// the composition point for per-node fault injection.
	next http.RoundTripper
}

func (t partitionedTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.p.mu.Lock()
	cut := t.p.blocked[t.from+"->"+req.URL.Host]
	t.p.mu.Unlock()
	if cut {
		return nil, faults.ErrConnDropped
	}
	if t.next != nil {
		return t.next.RoundTrip(req)
	}
	return t.p.next.RoundTrip(req)
}

// HarnessConfig sizes a test cluster. Zero values pick fast-failover
// settings suited to tests, not production.
type HarnessConfig struct {
	// Nodes is the cluster size (default 3).
	Nodes int
	// Dir is the root scratch directory; each node gets Dir/<id>/wal and
	// Dir/<id>/handoff. Required.
	Dir string
	// ProbeEvery / ProbeTimeout / SuspectAfter / DeadAfter tune
	// failover speed (defaults 25ms / 250ms / 1 / 2).
	ProbeEvery   time.Duration
	ProbeTimeout time.Duration
	SuspectAfter int
	DeadAfter    int
	// ForwardTimeout / ForwardRetries / BreakerThreshold /
	// BreakerCooldown tune the forwarders (defaults 500ms / 1 / 3 /
	// 100ms).
	ForwardTimeout   time.Duration
	ForwardRetries   int
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// ReadyHintBacklog passes through to each node's readiness check.
	ReadyHintBacklog int64
	// FaultTransport, when set, wraps each node's outbound transport
	// BELOW the partitioner — the seam for faults.NewRoundTripper
	// profiles (injected timeouts, 5xx bursts).
	FaultTransport func(next http.RoundTripper) http.RoundTripper
	// SpanStore, when set, enables distributed tracing on every node.
	// The store is shared cluster-wide — the in-process stand-in for a
	// central collector — so spans recorded by a node survive its Kill,
	// and a trace that crosses nodes lands in one place for assertions.
	SpanStore *obs.SpanStore
	// TraceSample is the head sampling rate when SpanStore is set
	// (default 1.0 — propagation tests want every trace).
	TraceSample float64
	// Admission gates every node's HTTP stack behind an adaptive
	// admission controller — the same wiring qtag-server uses — so the
	// overload sweeps exercise priority shedding and degraded-mode
	// recovery on real sockets.
	Admission bool
	// AdmissionLimiter tunes each node's limiter when Admission is set;
	// zero fields take the admission package defaults.
	AdmissionLimiter admission.LimiterConfig
	// AdmissionBacklog, when non-zero with Admission, is the
	// journal-backlog hard backstop: fresh ingest sheds once a node's
	// unsynced WAL backlog exceeds it, whatever the limiter thinks.
	// Negative values trip it permanently (fault-injection tests).
	AdmissionBacklog int64
	// AdmissionRecoveryHold is how long a node must stay pressure-free
	// before browned-out recovers (default per admission.Config).
	AdmissionRecoveryHold time.Duration
	// AdmissionRetryAfter is the Retry-After hint on shed responses
	// (default per admission.Config). Forwarding origins honor it as
	// their retry backoff, so a shedding peer's hint directly sets how
	// long an admitted forward occupies its origin's admission slot —
	// overload sweeps shrink it so forwards fail fast into handoff.
	AdmissionRetryAfter time.Duration
}

func (c *HarnessConfig) defaults() error {
	if c.Dir == "" {
		return fmt.Errorf("cluster: harness needs a Dir")
	}
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 25 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 250 * time.Millisecond
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 1
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 2
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 500 * time.Millisecond
	}
	if c.ForwardRetries <= 0 {
		c.ForwardRetries = 1
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 100 * time.Millisecond
	}
	if c.SpanStore != nil && c.TraceSample == 0 {
		c.TraceSample = 1
	}
	return nil
}

// HarnessNode is one live (or killed) member of the harness cluster.
type HarnessNode struct {
	ID  string
	URL string

	Store     *beacon.Store
	Agg       *aggregate.Aggregator
	Journal   *beacon.WALJournal
	Node      *Node
	Server    *beacon.Server
	Admission *admission.Controller // nil unless HarnessConfig.Admission

	addr    string // stable across restarts
	walDir  string
	hintDir string
	httpSrv *http.Server
	alive   bool
}

// Alive reports whether the node is currently serving.
func (hn *HarnessNode) Alive() bool { return hn.alive }

// Harness is the in-process cluster.
type Harness struct {
	cfg   HarnessConfig
	Net   *Partitioner
	Nodes []*HarnessNode
	peers map[string]string // id -> URL, full membership
}

// StartHarness boots an N-node cluster. All listeners are bound before
// any node starts, so every node knows the full membership up front —
// the same static-membership model the qtag-server flags express.
func StartHarness(cfg HarnessConfig) (*Harness, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	h := &Harness{cfg: cfg, Net: NewPartitioner(nil), peers: make(map[string]string)}
	lns := make([]net.Listener, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		id := fmt.Sprintf("n%d", i)
		addr := ln.Addr().String()
		hn := &HarnessNode{
			ID:      id,
			URL:     "http://" + addr,
			addr:    addr,
			walDir:  filepath.Join(cfg.Dir, id, "wal"),
			hintDir: filepath.Join(cfg.Dir, id, "handoff"),
		}
		h.Nodes = append(h.Nodes, hn)
		h.peers[id] = hn.URL
		h.Net.register(id, addr)
	}
	for i, hn := range h.Nodes {
		if err := h.boot(hn, lns[i]); err != nil {
			h.Close()
			return nil, err
		}
	}
	return h, nil
}

// boot builds one node's full stack on an existing listener and starts
// serving. It is the restart path too: state comes only from the
// node's WAL and handoff directories.
func (h *Harness) boot(hn *HarnessNode, ln net.Listener) error {
	store := beacon.NewStoreWithShards(beacon.DefaultStoreShards)
	agg := aggregate.New(aggregate.Options{})
	store.AddObserver(agg.Observe)
	wj, _, err := beacon.OpenDurable(wal.Options{Dir: hn.walDir, Fsync: wal.FsyncAlways}, store)
	if err != nil {
		return fmt.Errorf("cluster: boot %s wal: %w", hn.ID, err)
	}

	peers := make(map[string]string, len(h.peers)-1)
	for id, url := range h.peers {
		if id != hn.ID {
			peers[id] = url
		}
	}
	transport := http.RoundTripper(h.Net.Transport(hn.ID))
	if h.cfg.FaultTransport != nil {
		transport = h.Net.TransportWith(hn.ID, h.cfg.FaultTransport)
	}
	var tracer *obs.Tracer
	if h.cfg.SpanStore != nil {
		tracer = obs.NewTracer(obs.TracerConfig{
			Node:       hn.ID,
			SampleRate: h.cfg.TraceSample,
			Store:      h.cfg.SpanStore,
		})
	}
	node, err := NewNode(Config{
		Self:             hn.ID,
		Peers:            peers,
		Local:            beacon.Tee(store, wj),
		HandoffDir:       hn.hintDir,
		ProbeEvery:       h.cfg.ProbeEvery,
		ProbeTimeout:     h.cfg.ProbeTimeout,
		SuspectAfter:     h.cfg.SuspectAfter,
		DeadAfter:        h.cfg.DeadAfter,
		ForwardTimeout:   h.cfg.ForwardTimeout,
		ForwardRetries:   h.cfg.ForwardRetries,
		BreakerThreshold: h.cfg.BreakerThreshold,
		BreakerCooldown:  h.cfg.BreakerCooldown,
		ReadyHintBacklog: h.cfg.ReadyHintBacklog,
		Tracer:           tracer,
		Transport:        transport,
	})
	if err != nil {
		wj.Close()
		return fmt.Errorf("cluster: boot %s node: %w", hn.ID, err)
	}

	srv := beacon.NewServerWithSink(store, node)
	srv.SetReadiness(node.Readiness())
	srv.SetTracer(tracer)
	srv.Mount("GET /report", FederatedHandler(agg, FederationConfig{
		Self:      hn.ID,
		Peers:     peers,
		Transport: transport,
		Tracer:    tracer,
	}))
	node.RegisterMetrics(srv.Metrics())

	handler := http.Handler(srv)
	if h.cfg.Admission {
		acfg := admission.Config{
			Limiter:      h.cfg.AdmissionLimiter,
			RecoveryHold: h.cfg.AdmissionRecoveryHold,
			RetryAfter:   h.cfg.AdmissionRetryAfter,
		}
		if h.cfg.AdmissionBacklog != 0 {
			limit := h.cfg.AdmissionBacklog
			acfg.Backstop = func() bool { return int64(wj.Pending()) > limit }
		}
		ctrl := admission.NewController(acfg)
		ctrl.RegisterMetrics(srv.Metrics())
		// /readyz reflects both hint backlog and admission mode: a
		// browned-out or read-only node tells the balancer to route away.
		nodeReady := node.Readiness()
		srv.SetReadiness(func() error {
			if err := nodeReady(); err != nil {
				return err
			}
			if !ctrl.Ready() {
				return fmt.Errorf("admission: node is %s", ctrl.Mode())
			}
			return nil
		})
		handler = ctrl.Middleware(srv)
		hn.Admission = ctrl
	}

	hn.Store, hn.Agg, hn.Journal, hn.Node, hn.Server = store, agg, wj, node, srv
	hn.httpSrv = &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	hn.alive = true
	node.Start()
	go func() {
		if serr := hn.httpSrv.Serve(ln); serr != nil && !errors.Is(serr, http.ErrServerClosed) {
			_ = serr // listener closed by Kill/Close
		}
	}()
	return nil
}

// TransportWith composes the partitioner with a fault-injecting layer:
// partition checks run first (a cut link drops before faults fire), so
// a partitioned peer never also takes injected 5xxs.
func (p *Partitioner) TransportWith(nodeID string, wrap func(http.RoundTripper) http.RoundTripper) http.RoundTripper {
	return partitionedTransport{p: p, from: nodeID, next: wrap(p.next)}
}

// Kill abruptly stops node i: the listener closes mid-flight (clients
// see connection errors — those submissions were never acked), the
// probe loop and drains stop, and the WAL/hint files are released so
// Restart can reopen them. Nothing is flushed beyond what FsyncAlways
// already made durable — exactly a process kill from the disk's point
// of view.
func (h *Harness) Kill(i int) error {
	hn := h.Nodes[i]
	if !hn.alive {
		return nil
	}
	hn.alive = false
	// Close (not Shutdown): in-flight requests are severed, not drained.
	hn.httpSrv.Close()
	hn.Node.Close()
	err := hn.Journal.Close()
	hn.Store, hn.Agg, hn.Journal, hn.Node, hn.Server, hn.Admission = nil, nil, nil, nil, nil, nil
	return err
}

// Restart brings a killed node back on its original address, rebuilding
// all state from its WAL and handoff directories.
func (h *Harness) Restart(i int) error {
	hn := h.Nodes[i]
	if hn.alive {
		return nil
	}
	ln, err := net.Listen("tcp", hn.addr)
	if err != nil {
		return fmt.Errorf("cluster: rebind %s on %s: %w", hn.ID, hn.addr, err)
	}
	return h.boot(hn, ln)
}

// LiveURLs returns the base URLs of currently alive nodes, in node
// order.
func (h *Harness) LiveURLs() []string {
	var out []string
	for _, hn := range h.Nodes {
		if hn.alive {
			out = append(out, hn.URL)
		}
	}
	return out
}

// TotalPendingHints sums the hint backlog across live nodes.
func (h *Harness) TotalPendingHints() int64 {
	var n int64
	for _, hn := range h.Nodes {
		if hn.alive && hn.Node != nil {
			n += hn.Node.Stats().HintBacklog
		}
	}
	return n
}

// WaitDrained polls until no live node has pending hints (or the
// context expires).
func (h *Harness) WaitDrained(ctx context.Context) error {
	for {
		if h.TotalPendingHints() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: hints not drained: %d pending: %w", h.TotalPendingHints(), ctx.Err())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// ClusterEvents returns the union of every live node's stored events —
// the "recovered cluster-wide" side of the invariant. The returned map
// counts occurrences per idempotency key so tests can assert both
// coverage (>=1) and exactly-once (==1).
func (h *Harness) ClusterEvents() map[string]int {
	out := make(map[string]int)
	for _, hn := range h.Nodes {
		if !hn.alive || hn.Store == nil {
			continue
		}
		for _, e := range hn.Store.Events() {
			out[e.Key()]++
		}
	}
	return out
}

// Close tears the whole cluster down.
func (h *Harness) Close() error {
	var first error
	for i := range h.Nodes {
		if err := h.Kill(i); err != nil && first == nil {
			first = err
		}
	}
	return first
}

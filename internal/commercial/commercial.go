// Package commercial implements the baseline the paper compares against:
// a geometry-API-based viewability verifier of the kind ad-tech
// verification vendors shipped in 2019 (§5–6; the vendor itself is
// anonymised under NDA).
//
// Unlike Q-Tag, the commercial tag needs to know *where the creative is
// relative to the top viewport*. It has two ways to learn that:
//
//  1. an IntersectionObserver-style API, which works across origins but
//     only exists in environments that ship it (notably absent from
//     2019-era in-app webviews, especially on Android), or
//  2. polling getBoundingClientRect against the top window, which the
//     Same-Origin Policy only permits when every frame up to the top is
//     same-origin — almost never true for delivered ads.
//
// When neither path is available the tag cannot measure the impression at
// all. That capability gap — not measurement inaccuracy — is the
// mechanism behind the paper's Figure 3(a) and Table 2: the commercial
// solution measures only 74 % of impressions overall and 53.4 % in
// Android apps, versus Q-Tag's 93 %.
package commercial

import (
	"errors"
	"fmt"
	"time"

	"qtag/internal/adtag"
	"qtag/internal/beacon"
	"qtag/internal/viewability"
)

// ErrCannotMeasure is returned by Deploy when the environment offers
// neither an IntersectionObserver-style API nor same-origin geometry
// access, leaving the tag no way to determine viewability.
var ErrCannotMeasure = errors.New("commercial: no usable visibility API in this environment")

// DefaultPollInterval is how often the tag samples the creative's
// exposure.
const DefaultPollInterval = 100 * time.Millisecond

// Config tunes the commercial tag.
type Config struct {
	// PollInterval is the sampling period (default 100 ms).
	PollInterval time.Duration
	// Criteria overrides the viewability criteria; when nil they derive
	// from the impression's ad format.
	Criteria *viewability.Criteria
}

// Tag is the commercial verifier baseline. It implements adtag.Tag.
type Tag struct {
	cfg Config
}

// New returns a commercial tag with the given configuration.
func New(cfg Config) *Tag {
	if cfg.PollInterval == 0 {
		cfg.PollInterval = DefaultPollInterval
	}
	return &Tag{cfg: cfg}
}

// Name implements adtag.Tag.
func (t *Tag) Name() string { return string(beacon.SourceCommercial) }

// Deploy implements adtag.Tag. It probes the environment's visibility
// APIs; if one works it sends the loaded beacon and starts polling,
// otherwise it returns ErrCannotMeasure and the impression stays
// unmeasured by this solution.
func (t *Tag) Deploy(rt *adtag.Runtime) error {
	var measure func() (float64, error)
	switch {
	case rt.Profile().SupportsIntersectionObserver:
		measure = func() (float64, error) { return rt.IntersectionRatio() }
	default:
		// Geometry polling: only possible when the frame chain is
		// same-origin with the top window.
		if _, err := rt.BoundingRectInTop(); err != nil {
			return fmt.Errorf("%w: %v", ErrCannotMeasure, err)
		}
		measure = func() (float64, error) { return t.geometryFraction(rt) }
	}

	criteria := t.criteria(rt)
	if err := rt.SendBeacon(beacon.SourceCommercial, beacon.EventLoaded, 0); err != nil {
		return fmt.Errorf("commercial: loaded beacon: %w", err)
	}
	d := &poller{rt: rt, criteria: criteria, measure: measure, interval: t.cfg.PollInterval}
	d.ticker = rt.Every(t.cfg.PollInterval, d.poll)
	return nil
}

// geometryFraction computes exposure by intersecting the creative's
// bounding rect with the top viewport — the classic pre-IntersectionObserver
// technique. The Page Visibility API covers background tabs, but the
// method is blind to occluded or off-screen windows.
func (t *Tag) geometryFraction(rt *adtag.Runtime) (float64, error) {
	if rt.PageHidden() {
		return 0, nil
	}
	rect, err := rt.BoundingRectInTop()
	if err != nil {
		return 0, err
	}
	viewport, err := rt.ViewportInfo()
	if err != nil {
		return 0, err
	}
	return rect.VisibleFraction(viewport), nil
}

func (t *Tag) criteria(rt *adtag.Runtime) viewability.Criteria {
	if t.cfg.Criteria != nil {
		return *t.cfg.Criteria
	}
	return viewability.StandardCriteria(rt.Impression().Format)
}

// poller is the per-impression measurement loop.
type poller struct {
	rt       *adtag.Runtime
	criteria viewability.Criteria
	measure  func() (float64, error)
	interval time.Duration

	inRun      bool
	runStart   time.Duration
	inViewSent bool
	outSent    bool
	ticker     interface{ Stop() }
}

func (p *poller) poll() {
	frac, err := p.measure()
	if err != nil {
		frac = 0
	}
	now := p.rt.Now()
	if frac >= p.criteria.AreaFraction {
		if !p.inRun {
			p.inRun = true
			p.runStart = now
		}
		if !p.inViewSent && now-p.runStart >= p.criteria.Dwell {
			p.inViewSent = true
			_ = p.rt.SendBeacon(beacon.SourceCommercial, beacon.EventInView, 0)
		}
		return
	}
	p.inRun = false
	if p.inViewSent && !p.outSent {
		p.outSent = true
		_ = p.rt.SendBeacon(beacon.SourceCommercial, beacon.EventOutOfView, 0)
		p.ticker.Stop()
	}
}

package commercial

import (
	"errors"
	"testing"
	"time"

	"qtag/internal/adtag"
	"qtag/internal/beacon"
	"qtag/internal/browser"
	"qtag/internal/dom"
	"qtag/internal/geom"
	"qtag/internal/simclock"
	"qtag/internal/viewability"
)

const (
	pub = dom.Origin("https://publisher.example")
	dsp = dom.Origin("https://dsp.example")
)

type fixture struct {
	clock   *simclock.Clock
	browser *browser.Browser
	page    *browser.Page
	store   *beacon.Store
	rt      *adtag.Runtime
	err     error
}

func deploy(t *testing.T, prof browser.Profile, sameOrigin bool, adY float64) *fixture {
	t.Helper()
	clock := simclock.New()
	b := browser.New(clock, browser.Options{Profile: prof})
	t.Cleanup(b.Close)
	w := b.OpenWindow(geom.Point{}, geom.Size{W: 1280, H: 720})
	doc := dom.NewDocument(pub, geom.Size{W: 1280, H: 6000})
	page := w.ActiveTab().Navigate(doc)
	origin := dsp
	if sameOrigin {
		origin = pub
	}
	frame := doc.Root().AttachIframe(origin, geom.Rect{X: 200, Y: adY, W: 300, H: 250})
	creative := frame.Root().AppendChild("creative", geom.Rect{X: 0, Y: 0, W: 300, H: 250})
	store := beacon.NewStore()
	rt := adtag.NewRuntime(page, creative, store, adtag.Impression{
		ID: "imp-1", CampaignID: "camp-1", Format: viewability.Display,
	})
	err := New(Config{}).Deploy(rt)
	return &fixture{clock: clock, browser: b, page: page, store: store, rt: rt, err: err}
}

func (f *fixture) has(typ beacon.EventType) bool {
	for _, e := range f.store.Events() {
		if e.Type == typ && e.Source == beacon.SourceCommercial {
			return true
		}
	}
	return false
}

func chrome() browser.Profile { return browser.CertificationProfiles()[1] }

func TestMeasuresViaIntersectionObserver(t *testing.T) {
	f := deploy(t, chrome(), false, 100) // cross-origin, but Chrome has IO
	if f.err != nil {
		t.Fatalf("deploy: %v", f.err)
	}
	if !f.has(beacon.EventLoaded) {
		t.Fatal("loaded beacon missing")
	}
	f.clock.Advance(1500 * time.Millisecond)
	if !f.has(beacon.EventInView) {
		t.Error("in-view missing after 1.5s full visibility")
	}
	f.page.ScrollTo(geom.Point{Y: 2000})
	f.clock.Advance(500 * time.Millisecond)
	if !f.has(beacon.EventOutOfView) {
		t.Error("out-of-view missing after scroll away")
	}
}

func TestCannotMeasureCrossOriginWithoutIO(t *testing.T) {
	prof := browser.AndroidWebViewProfile(true) // old webview: no IO
	f := deploy(t, prof, false, 100)
	if !errors.Is(f.err, ErrCannotMeasure) {
		t.Fatalf("err = %v, want ErrCannotMeasure", f.err)
	}
	if f.store.Len() != 0 {
		t.Error("unmeasurable impression must emit no beacons")
	}
}

func TestGeometryFallbackSameOrigin(t *testing.T) {
	// IE11: no IntersectionObserver, but a same-origin (friendly) iframe
	// allows geometry polling.
	ie := browser.CertificationProfiles()[2]
	if ie.Browser != "IE" {
		t.Fatal("profile order changed")
	}
	f := deploy(t, ie, true, 100)
	if f.err != nil {
		t.Fatalf("deploy via geometry should work same-origin: %v", f.err)
	}
	f.clock.Advance(1500 * time.Millisecond)
	if !f.has(beacon.EventInView) {
		t.Error("geometry path in-view missing")
	}
	// Scrolling away is visible to geometry polling.
	f.page.ScrollTo(geom.Point{Y: 3000})
	f.clock.Advance(500 * time.Millisecond)
	if !f.has(beacon.EventOutOfView) {
		t.Error("geometry path out-of-view missing")
	}
}

func TestGeometryFallbackCrossOriginFails(t *testing.T) {
	ie := browser.CertificationProfiles()[2]
	f := deploy(t, ie, false, 100)
	if !errors.Is(f.err, ErrCannotMeasure) {
		t.Fatalf("err = %v, want ErrCannotMeasure", f.err)
	}
}

func TestGeometryPathRespectsPageVisibility(t *testing.T) {
	ie := browser.CertificationProfiles()[2]
	f := deploy(t, ie, true, 100)
	if f.err != nil {
		t.Fatal(f.err)
	}
	f.clock.Advance(1500 * time.Millisecond) // in-view
	w := f.page.Tab().Window()
	w.ActivateTab(w.NewTab())
	f.clock.Advance(500 * time.Millisecond)
	if !f.has(beacon.EventOutOfView) {
		t.Error("tab switch should register via the Page Visibility API")
	}
}

func TestGeometryPathBlindToOcclusion(t *testing.T) {
	// Documented limitation: geometry polling cannot see window occlusion,
	// so the ad keeps "counting" dwell while covered.
	ie := browser.CertificationProfiles()[2]
	f := deploy(t, ie, true, 100)
	if f.err != nil {
		t.Fatal(f.err)
	}
	f.page.Tab().Window().SetObscured(true)
	f.clock.Advance(2 * time.Second)
	if !f.has(beacon.EventInView) {
		t.Error("geometry path is expected to (incorrectly) report in-view while obscured")
	}
}

func TestBelowFoldNoInView(t *testing.T) {
	f := deploy(t, chrome(), false, 3000)
	if f.err != nil {
		t.Fatal(f.err)
	}
	f.clock.Advance(3 * time.Second)
	if f.has(beacon.EventInView) {
		t.Error("below-the-fold ad must not be in-view")
	}
	if !f.has(beacon.EventLoaded) {
		t.Error("loaded should fire: the impression is measured (as not viewed)")
	}
}

func TestVideoCriteria(t *testing.T) {
	clock := simclock.New()
	b := browser.New(clock, browser.Options{Profile: chrome()})
	defer b.Close()
	w := b.OpenWindow(geom.Point{}, geom.Size{W: 1280, H: 720})
	doc := dom.NewDocument(pub, geom.Size{W: 1280, H: 2000})
	page := w.ActiveTab().Navigate(doc)
	frame := doc.Root().AttachIframe(dsp, geom.Rect{X: 0, Y: 0, W: 640, H: 360})
	creative := frame.Root().AppendChild("creative", geom.Rect{W: 640, H: 360})
	store := beacon.NewStore()
	rt := adtag.NewRuntime(page, creative, store, adtag.Impression{
		ID: "v", CampaignID: "c", Format: viewability.Video,
	})
	if err := New(Config{}).Deploy(rt); err != nil {
		t.Fatal(err)
	}
	clock.Advance(1500 * time.Millisecond)
	if store.InView("c", beacon.SourceCommercial) != 0 {
		t.Error("video in-view before 2s")
	}
	clock.Advance(800 * time.Millisecond)
	if store.InView("c", beacon.SourceCommercial) != 1 {
		t.Error("video in-view missing after 2.3s")
	}
}

func TestTagName(t *testing.T) {
	if New(Config{}).Name() != "commercial" {
		t.Error("name wrong")
	}
}

func TestCriteriaOverride(t *testing.T) {
	clock := simclock.New()
	b := browser.New(clock, browser.Options{Profile: chrome()})
	defer b.Close()
	w := b.OpenWindow(geom.Point{}, geom.Size{W: 1280, H: 720})
	doc := dom.NewDocument(pub, geom.Size{W: 1280, H: 2000})
	page := w.ActiveTab().Navigate(doc)
	frame := doc.Root().AttachIframe(dsp, geom.Rect{X: 0, Y: 0, W: 300, H: 250})
	creative := frame.Root().AppendChild("creative", geom.Rect{W: 300, H: 250})
	store := beacon.NewStore()
	rt := adtag.NewRuntime(page, creative, store, adtag.Impression{ID: "i", CampaignID: "c"})
	crit := viewability.Criteria{AreaFraction: 0.5, Dwell: 4 * time.Second}
	if err := New(Config{Criteria: &crit}).Deploy(rt); err != nil {
		t.Fatal(err)
	}
	clock.Advance(3 * time.Second)
	if store.InView("c", beacon.SourceCommercial) != 0 {
		t.Error("override dwell ignored")
	}
	clock.Advance(2 * time.Second)
	if store.InView("c", beacon.SourceCommercial) != 1 {
		t.Error("in-view missing after override dwell")
	}
}

package economics

import (
	"math"
	"strings"
	"testing"
)

// TestEconomicsPaperNumbers reproduces the §6.1 ballpark: $9.5k/day and
// ≈$3.5M/year for a mid-size DSP, ×10 for a large one.
func TestEconomicsPaperNumbers(t *testing.T) {
	mid := Compute(PaperMidSize())
	if math.Abs(mid.DailyUSD-9500) > 1 {
		t.Errorf("mid daily = $%.0f, want $9500", mid.DailyUSD)
	}
	if mid.AnnualUSD < 3.4e6 || mid.AnnualUSD > 3.6e6 {
		t.Errorf("mid annual = $%.0f, want ≈$3.5M", mid.AnnualUSD)
	}
	if math.Abs(mid.ExtraMeasuredPerDay-19e6) > 1 {
		t.Errorf("extra measured = %v, want 19M", mid.ExtraMeasuredPerDay)
	}
	if math.Abs(mid.ExtraViewedPerDay-9.5e6) > 1 {
		t.Errorf("extra viewed = %v, want 9.5M", mid.ExtraViewedPerDay)
	}

	large := Compute(PaperLargeSize())
	if math.Abs(large.DailyUSD-95000) > 1 {
		t.Errorf("large daily = $%.0f, want $95000", large.DailyUSD)
	}
	if large.AnnualUSD < 34e6 || large.AnnualUSD > 36e6 {
		t.Errorf("large annual = $%.0f, want ≈$35M", large.AnnualUSD)
	}
}

func TestComputeScalesLinearly(t *testing.T) {
	p := PaperMidSize()
	base := Compute(p)
	p.CPM = 2
	if got := Compute(p).DailyUSD; math.Abs(got-2*base.DailyUSD) > 1e-6 {
		t.Error("revenue must scale linearly with CPM")
	}
	p.CPM = 1
	p.AdsPerDay *= 3
	if got := Compute(p).DailyUSD; math.Abs(got-3*base.DailyUSD) > 1e-6 {
		t.Error("revenue must scale linearly with volume")
	}
}

func TestComputeZeroGap(t *testing.T) {
	p := PaperMidSize()
	p.MeasuredRateCommercial = p.MeasuredRateQTag
	u := Compute(p)
	if u.DailyUSD != 0 || u.AnnualUSD != 0 || u.ExtraMeasuredPerDay != 0 {
		t.Errorf("no gap should mean no uplift: %+v", u)
	}
}

func TestComputeNegativeGap(t *testing.T) {
	// A worse solution yields a negative uplift, not a panic.
	p := PaperMidSize()
	p.MeasuredRateQTag = 0.5
	p.MeasuredRateCommercial = 0.9
	if u := Compute(p); u.DailyUSD >= 0 {
		t.Errorf("expected negative uplift, got %v", u.DailyUSD)
	}
}

func TestComputePanicsOnBadRates(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.MeasuredRateQTag = 1.5 },
		func(p *Params) { p.ViewabilityRate = -0.1 },
		func(p *Params) { p.AdsPerDay = -1 },
		func(p *Params) { p.ViewabilityRate = math.NaN() },
	}
	for i, mutate := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			p := PaperMidSize()
			mutate(&p)
			Compute(p)
		}()
	}
}

func TestUpliftString(t *testing.T) {
	s := Compute(PaperMidSize()).String()
	if !strings.Contains(s, "$9.5k/day") || !strings.Contains(s, "3.47M/year") {
		t.Errorf("String = %q", s)
	}
}

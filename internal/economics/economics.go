// Package economics implements the paper's §6.1 revenue model: under
// viewable-impression pricing, impressions whose viewability cannot be
// measured are not monetised, so a higher measured rate converts directly
// into revenue.
//
// The paper's ballpark: a DSP switching from the commercial solution
// (74 % measured) to Q-Tag (93 % measured) measures 19 pp more ads; at a
// ≈50 % viewability rate roughly half of those become billable viewed
// impressions, i.e. 9.5 pp of all traffic. At 100 M ads/day and a $1 CPM
// that is $9.5k/day ≈ $3.5M/year (×10 for a 1 B ads/day DSP).
package economics

import (
	"fmt"
	"math"
)

// Params describes a DSP's traffic and the two measurement solutions
// being compared.
type Params struct {
	// AdsPerDay is the DSP's daily served impressions.
	AdsPerDay float64
	// CPM is the average price per thousand viewed impressions in USD.
	CPM float64
	// MeasuredRateQTag is Q-Tag's measured rate.
	MeasuredRateQTag float64
	// MeasuredRateCommercial is the baseline's measured rate.
	MeasuredRateCommercial float64
	// ViewabilityRate is the fraction of measured impressions that meet
	// the standard.
	ViewabilityRate float64
}

// PaperMidSize returns the §6.1 mid-size DSP scenario (100 M ads/day).
func PaperMidSize() Params {
	return Params{
		AdsPerDay: 100e6, CPM: 1,
		MeasuredRateQTag: 0.93, MeasuredRateCommercial: 0.74,
		ViewabilityRate: 0.50,
	}
}

// PaperLargeSize returns the §6.1 large DSP scenario (1 B ads/day).
func PaperLargeSize() Params {
	p := PaperMidSize()
	p.AdsPerDay = 1e9
	return p
}

// Uplift is the computed revenue difference from adopting Q-Tag.
type Uplift struct {
	// ExtraMeasuredPerDay is the additional impressions measured per day.
	ExtraMeasuredPerDay float64
	// ExtraViewedPerDay is the additional *billable viewed* impressions
	// per day.
	ExtraViewedPerDay float64
	// DailyUSD and AnnualUSD are the revenue gains.
	DailyUSD  float64
	AnnualUSD float64
}

// String implements fmt.Stringer.
func (u Uplift) String() string {
	return fmt.Sprintf("+%.1fM measured/day → +%.1fM viewed/day → $%.1fk/day ≈ $%.2fM/year",
		u.ExtraMeasuredPerDay/1e6, u.ExtraViewedPerDay/1e6, u.DailyUSD/1e3, u.AnnualUSD/1e6)
}

// Compute evaluates the uplift model. It panics on invalid rates.
func Compute(p Params) Uplift {
	for _, r := range []float64{p.MeasuredRateQTag, p.MeasuredRateCommercial, p.ViewabilityRate} {
		if r < 0 || r > 1 || math.IsNaN(r) {
			panic(fmt.Sprintf("economics: rate %v out of [0,1]", r))
		}
	}
	if p.AdsPerDay < 0 || p.CPM < 0 {
		panic("economics: negative volume or price")
	}
	extraMeasured := (p.MeasuredRateQTag - p.MeasuredRateCommercial) * p.AdsPerDay
	extraViewed := extraMeasured * p.ViewabilityRate
	daily := extraViewed / 1000 * p.CPM
	return Uplift{
		ExtraMeasuredPerDay: extraMeasured,
		ExtraViewedPerDay:   extraViewed,
		DailyUSD:            daily,
		AnnualUSD:           daily * 365,
	}
}

package predict

import (
	"math"
	"strings"
	"testing"

	"qtag/internal/campaign"
	"qtag/internal/simrand"
)

// synthetic builds a separable dataset: shallow ads viewed, deep ads not,
// with label noise.
func synthetic(n int, seed uint64) []Sample {
	rng := simrand.New(seed)
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		depth := rng.Float64()
		pViewed := 0.9 - 0.8*depth // linear in depth
		out = append(out, Sample{
			DepthFraction: depth,
			Mobile:        rng.Bool(0.7),
			Viewed:        rng.Bool(pViewed),
		})
	}
	return out
}

func TestTrainLearnsDepthEffect(t *testing.T) {
	samples := synthetic(4000, 1)
	m := Train(samples, TrainConfig{})
	if m.WDepth >= 0 {
		t.Errorf("depth weight should be negative (deeper = less viewed): %v", m)
	}
	// Predictions must be ordered by depth.
	if m.Predict(0.1, false) <= m.Predict(0.9, false) {
		t.Error("shallow placement must predict higher viewability")
	}
	metrics := Evaluate(m, synthetic(2000, 2))
	if metrics.AUC < 0.65 {
		t.Errorf("AUC = %.3f, expected clearly better than chance", metrics.AUC)
	}
	if metrics.Accuracy <= metrics.BaseRate-0.05 {
		t.Errorf("accuracy %.3f should not be far below base rate %.3f", metrics.Accuracy, metrics.BaseRate)
	}
	if metrics.Brier >= 0.25 {
		t.Errorf("Brier = %.3f, should beat the uninformed 0.25", metrics.Brier)
	}
	if m.String() == "" || metrics.String() == "" {
		t.Error("stringers empty")
	}
}

func TestTrainOnSimulatorData(t *testing.T) {
	res := campaign.New(campaign.Config{
		Seed: 5, Campaigns: 10, ImpressionsPerCampaign: 120, BothCampaigns: 0,
		RecordImpressions: true,
	}).Run()
	samples := SamplesFromResult(res)
	if len(samples) < 800 {
		t.Fatalf("samples = %d", len(samples))
	}
	// Split train/test deterministically.
	split := len(samples) * 3 / 4
	m := Train(samples[:split], TrainConfig{})
	metrics := Evaluate(m, samples[split:])
	if m.WDepth >= 0 {
		t.Errorf("simulated sessions scroll from the top, so depth must hurt: %v", m)
	}
	if metrics.AUC < 0.60 {
		t.Errorf("AUC on simulator data = %.3f, want meaningfully above chance", metrics.AUC)
	}
}

func TestRecordsHaveSaneFields(t *testing.T) {
	res := campaign.New(campaign.Config{
		Seed: 6, Campaigns: 3, ImpressionsPerCampaign: 40, BothCampaigns: 0,
		RecordImpressions: true,
	}).Run()
	if len(res.Impressions) == 0 {
		t.Fatal("no records collected")
	}
	viewed := 0
	for _, r := range res.Impressions {
		if r.DepthFraction < 0 || r.DepthFraction > 1 {
			t.Fatalf("depth out of range: %+v", r)
		}
		if r.CampaignID == "" {
			t.Fatal("missing campaign id")
		}
		if r.Viewed {
			viewed++
		}
	}
	if viewed == 0 || viewed == len(res.Impressions) {
		t.Errorf("degenerate labels: %d/%d viewed", viewed, len(res.Impressions))
	}
	// Records are off by default.
	res2 := campaign.New(campaign.Config{Seed: 6, Campaigns: 1, ImpressionsPerCampaign: 10, BothCampaigns: 0}).Run()
	if len(res2.Impressions) != 0 {
		t.Error("records collected without opt-in")
	}
}

func TestAUCProperties(t *testing.T) {
	// Perfect separation → AUC 1.
	var perfect []Sample
	for i := 0; i < 50; i++ {
		perfect = append(perfect, Sample{DepthFraction: 0.1, Viewed: true})
		perfect = append(perfect, Sample{DepthFraction: 0.9, Viewed: false})
	}
	m := &Model{Bias: 2, WDepth: -5}
	if got := Evaluate(m, perfect).AUC; math.Abs(got-1) > 1e-9 {
		t.Errorf("perfect AUC = %v", got)
	}
	// Constant scores → AUC 0.5 (all ties).
	flat := &Model{}
	if got := Evaluate(flat, perfect).AUC; math.Abs(got-0.5) > 1e-9 {
		t.Errorf("tied AUC = %v", got)
	}
	// Single-class sets degrade gracefully to 0.5.
	onlyPos := []Sample{{Viewed: true}, {DepthFraction: 0.5, Viewed: true}}
	if got := Evaluate(m, onlyPos).AUC; got != 0.5 {
		t.Errorf("single-class AUC = %v", got)
	}
}

func TestPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { Train(nil, TrainConfig{}) },
		func() { Evaluate(&Model{}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestModelStringFormat(t *testing.T) {
	m := &Model{Bias: 1.5, WDepth: -3.25, WMobile: 0.125}
	if !strings.Contains(m.String(), "-3.250") {
		t.Errorf("String = %q", m.String())
	}
}

func BenchmarkTrain(b *testing.B) {
	samples := synthetic(1000, 1)
	for i := 0; i < b.N; i++ {
		Train(samples, TrainConfig{Epochs: 50})
	}
}

// Package predict implements the viewability *prediction* baseline the
// paper cites as related work (§7, Wang et al. [36]: predicting
// viewability from scroll depth for a given user and page) — an
// extension, not part of the paper's own contribution.
//
// Measurement (Q-Tag) answers "was this impression viewed"; prediction
// answers "will an ad placed at this depth be viewed", which is what a
// bidder wants *before* buying the impression. The model here is a small
// logistic regression over placement depth and device class, trained by
// gradient descent on ground-truth-labelled impressions from the
// production simulator (campaign.Config.RecordImpressions), and evaluated
// with accuracy, AUC and Brier score.
package predict

import (
	"fmt"
	"math"
	"sort"

	"qtag/internal/campaign"
)

// Sample is one labelled impression.
type Sample struct {
	// DepthFraction is the ad's placement depth below the initial
	// viewport as a fraction of page height (0 = above the fold).
	DepthFraction float64
	// Mobile is the device class.
	Mobile bool
	// Viewed is the ground-truth label.
	Viewed bool
}

// SamplesFromResult converts a simulation's impression records into
// training samples. The simulation must have been run with
// RecordImpressions set.
func SamplesFromResult(res *campaign.Result) []Sample {
	out := make([]Sample, 0, len(res.Impressions))
	for _, r := range res.Impressions {
		out = append(out, Sample{
			DepthFraction: r.DepthFraction,
			Mobile:        r.Mobile,
			Viewed:        r.Viewed,
		})
	}
	return out
}

// Model is a logistic regression P(viewed) = σ(b + wDepth·depth +
// wMobile·mobile).
type Model struct {
	Bias    float64
	WDepth  float64
	WMobile float64
}

// Predict returns the estimated probability that an ad at the given
// depth on the given device class meets the viewability standard.
func (m *Model) Predict(depth float64, mobile bool) float64 {
	z := m.Bias + m.WDepth*depth
	if mobile {
		z += m.WMobile
	}
	return sigmoid(z)
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// String implements fmt.Stringer.
func (m *Model) String() string {
	return fmt.Sprintf("logit(p) = %.3f + %.3f·depth + %.3f·mobile", m.Bias, m.WDepth, m.WMobile)
}

// TrainConfig tunes the gradient-descent fit.
type TrainConfig struct {
	// Epochs is the number of full passes (default 200).
	Epochs int
	// LearningRate is the SGD step size (default 0.5).
	LearningRate float64
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs == 0 {
		c.Epochs = 200
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.5
	}
	return c
}

// Train fits a logistic model by batch gradient descent on the log loss.
// It panics on an empty training set.
func Train(samples []Sample, cfg TrainConfig) *Model {
	if len(samples) == 0 {
		panic("predict: Train with no samples")
	}
	cfg = cfg.withDefaults()
	m := &Model{}
	n := float64(len(samples))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var gb, gd, gm float64
		for _, s := range samples {
			p := m.Predict(s.DepthFraction, s.Mobile)
			y := 0.0
			if s.Viewed {
				y = 1
			}
			err := p - y
			gb += err
			gd += err * s.DepthFraction
			if s.Mobile {
				gm += err
			}
		}
		m.Bias -= cfg.LearningRate * gb / n
		m.WDepth -= cfg.LearningRate * gd / n
		m.WMobile -= cfg.LearningRate * gm / n
	}
	return m
}

// Metrics summarises a model's quality on a labelled set.
type Metrics struct {
	// Accuracy is the fraction of correct ≥0.5-threshold decisions.
	Accuracy float64
	// AUC is the area under the ROC curve (0.5 = chance, 1 = perfect).
	AUC float64
	// Brier is the mean squared probability error (lower is better).
	Brier float64
	// BaseRate is the positive-label fraction, for reference.
	BaseRate float64
}

// String implements fmt.Stringer.
func (m Metrics) String() string {
	return fmt.Sprintf("acc=%.3f auc=%.3f brier=%.3f base=%.3f", m.Accuracy, m.AUC, m.Brier, m.BaseRate)
}

// Evaluate scores the model on a labelled set. It panics on an empty set.
func Evaluate(m *Model, samples []Sample) Metrics {
	if len(samples) == 0 {
		panic("predict: Evaluate with no samples")
	}
	preds := make([]scored, 0, len(samples))
	var correct int
	var brier float64
	var positives int
	for _, s := range samples {
		p := m.Predict(s.DepthFraction, s.Mobile)
		preds = append(preds, scored{p: p, y: s.Viewed})
		y := 0.0
		if s.Viewed {
			y = 1
			positives++
		}
		if (p >= 0.5) == s.Viewed {
			correct++
		}
		brier += (p - y) * (p - y)
	}
	n := float64(len(samples))
	out := Metrics{
		Accuracy: float64(correct) / n,
		Brier:    brier / n,
		BaseRate: float64(positives) / n,
	}
	out.AUC = auc(preds)
	return out
}

// scored pairs a prediction with its label for ranking.
type scored struct {
	p float64
	y bool
}

// auc computes the area under the ROC curve via the rank statistic
// (probability a random positive scores above a random negative, ties
// counting half).
func auc(preds []scored) float64 {
	sort.Slice(preds, func(i, j int) bool { return preds[i].p < preds[j].p })
	var pos, neg int
	for _, s := range preds {
		if s.y {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0.5
	}
	// Average rank of positives (1-based, ties averaged).
	var rankSum float64
	i := 0
	for i < len(preds) {
		j := i
		for j < len(preds) && preds[j].p == preds[i].p {
			j++
		}
		avgRank := float64(i+j+1) / 2 // average of ranks i+1..j
		for k := i; k < j; k++ {
			if preds[k].y {
				rankSum += avgRank
			}
		}
		i = j
	}
	return (rankSum - float64(pos)*float64(pos+1)/2) / (float64(pos) * float64(neg))
}

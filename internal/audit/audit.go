// Package audit verifies the internal consistency of a beacon stream.
//
// The paper's core argument is that viewability measurement should be
// *transparent and auditable* (§1, §8): because Q-Tag's algorithm and
// event protocol are public, anyone holding the beacon log can check that
// the reported numbers are even possible. This package is that auditor.
// It replays a store's events per impression and flags:
//
//   - protocol violations — measurement events for impressions the DSP
//     never served, in-view without a tag check-in, out-of-view without a
//     preceding in-view;
//   - physically impossible timings — an in-view beacon earlier than
//     (loaded + the standard's dwell) cannot result from a correct tag
//     and indicates spoofed beacons or a broken clock;
//   - ordering violations — event timestamps contradicting the protocol
//     state machine.
//
// A clean production pipeline (including every simulator in this
// repository) audits clean; the tests inject each violation class and
// assert it is caught.
package audit

import (
	"fmt"
	"sort"
	"time"

	"qtag/internal/beacon"
	"qtag/internal/viewability"
)

// FindingKind classifies an audit finding.
type FindingKind int

// Finding kinds.
const (
	// OrphanMeasurement: tag events for an impression with no served log.
	OrphanMeasurement FindingKind = iota
	// InViewWithoutLoaded: viewability reported by a tag that never
	// checked in.
	InViewWithoutLoaded
	// OutOfViewWithoutInView: visibility loss reported before any
	// in-view.
	OutOfViewWithoutInView
	// ImpossibleDwell: in-view earlier than loaded + the standard's
	// minimum dwell — no correct tag can produce this.
	ImpossibleDwell
	// OrderViolation: timestamps contradict the protocol order
	// (loaded ≤ in-view ≤ out-of-view).
	OrderViolation
)

// String implements fmt.Stringer.
func (k FindingKind) String() string {
	switch k {
	case OrphanMeasurement:
		return "orphan-measurement"
	case InViewWithoutLoaded:
		return "in-view-without-loaded"
	case OutOfViewWithoutInView:
		return "out-of-view-without-in-view"
	case ImpossibleDwell:
		return "impossible-dwell"
	case OrderViolation:
		return "order-violation"
	default:
		return fmt.Sprintf("FindingKind(%d)", int(k))
	}
}

// Finding is one detected inconsistency.
type Finding struct {
	Kind         FindingKind
	CampaignID   string
	ImpressionID string
	Source       beacon.Source
	Detail       string
}

// String implements fmt.Stringer.
func (f Finding) String() string {
	return fmt.Sprintf("%s camp=%s imp=%s src=%s: %s",
		f.Kind, f.CampaignID, f.ImpressionID, f.Source, f.Detail)
}

// Report is the outcome of an audit.
type Report struct {
	// Impressions is the number of distinct impressions examined.
	Impressions int
	// CleanImpressions had no findings.
	CleanImpressions int
	// Findings lists every inconsistency, deterministically ordered.
	Findings []Finding
	// ByKind counts findings per kind.
	ByKind map[FindingKind]int
}

// Clean reports whether the stream audits clean.
func (r *Report) Clean() bool { return len(r.Findings) == 0 }

// String implements fmt.Stringer.
func (r *Report) String() string {
	if r.Clean() {
		return fmt.Sprintf("audit: %d impressions, all clean", r.Impressions)
	}
	return fmt.Sprintf("audit: %d impressions, %d findings (%d clean)",
		r.Impressions, len(r.Findings), r.CleanImpressions)
}

// Options tunes the audit.
type Options struct {
	// MinDwell is the minimum believable loaded→in-view delay; when zero
	// it defaults per impression from the event's Format metadata via the
	// IAB/MRC standard (1 s display, 2 s video), with a small tolerance
	// for sampling granularity.
	MinDwell time.Duration
	// DwellTolerance absorbs tag sampling granularity (default 150 ms —
	// one and a half 100 ms sampling windows).
	DwellTolerance time.Duration
}

func (o Options) withDefaults() Options {
	if o.DwellTolerance == 0 {
		o.DwellTolerance = 150 * time.Millisecond
	}
	return o
}

// impressionKey groups events per (campaign, impression).
type impressionKey struct {
	campaign   string
	impression string
}

// Run audits every impression in the store.
func Run(store *beacon.Store, opts Options) *Report {
	opts = opts.withDefaults()
	groups := map[impressionKey][]beacon.Event{}
	for _, e := range store.Events() {
		k := impressionKey{campaign: e.CampaignID, impression: e.ImpressionID}
		groups[k] = append(groups[k], e)
	}
	keys := make([]impressionKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].campaign != keys[j].campaign {
			return keys[i].campaign < keys[j].campaign
		}
		return keys[i].impression < keys[j].impression
	})

	rep := &Report{ByKind: map[FindingKind]int{}}
	for _, k := range keys {
		rep.Impressions++
		findings := auditImpression(k, groups[k], opts)
		if len(findings) == 0 {
			rep.CleanImpressions++
		}
		for _, f := range findings {
			rep.Findings = append(rep.Findings, f)
			rep.ByKind[f.Kind]++
		}
	}
	return rep
}

// auditImpression checks one impression's event set.
func auditImpression(k impressionKey, events []beacon.Event, opts Options) []Finding {
	var findings []Finding
	add := func(kind FindingKind, src beacon.Source, detail string) {
		findings = append(findings, Finding{
			Kind: kind, CampaignID: k.campaign, ImpressionID: k.impression,
			Source: src, Detail: detail,
		})
	}

	served := false
	perSource := map[beacon.Source]map[beacon.EventType]beacon.Event{}
	var format string
	for _, e := range events {
		if e.Type == beacon.EventServed {
			served = true
			if e.Meta.Format != "" {
				format = e.Meta.Format
			}
			continue
		}
		m := perSource[e.Source]
		if m == nil {
			m = map[beacon.EventType]beacon.Event{}
			perSource[e.Source] = m
		}
		// Keep the earliest event of each type (Seq 0 cycle).
		if prev, ok := m[e.Type]; !ok || e.At.Before(prev.At) {
			m[e.Type] = e
		}
		if e.Meta.Format != "" {
			format = e.Meta.Format
		}
	}

	sources := make([]beacon.Source, 0, len(perSource))
	for src := range perSource {
		sources = append(sources, src)
	}
	sort.Slice(sources, func(i, j int) bool { return sources[i] < sources[j] })

	for _, src := range sources {
		m := perSource[src]
		if !served {
			add(OrphanMeasurement, src, "tag events without a served log")
		}
		loaded, hasLoaded := m[beacon.EventLoaded]
		inView, hasInView := m[beacon.EventInView]
		outView, hasOut := m[beacon.EventOutOfView]

		if hasInView && !hasLoaded {
			add(InViewWithoutLoaded, src, "viewability reported by a tag that never checked in")
		}
		if hasOut && !hasInView {
			add(OutOfViewWithoutInView, src, "out-of-view without a preceding in-view")
		}
		if hasLoaded && hasInView && !loaded.At.IsZero() && !inView.At.IsZero() {
			if inView.At.Before(loaded.At) {
				add(OrderViolation, src, fmt.Sprintf("in-view at %v precedes loaded at %v",
					inView.At.Format(time.RFC3339Nano), loaded.At.Format(time.RFC3339Nano)))
			} else {
				minDwell := opts.MinDwell
				if minDwell == 0 {
					minDwell = dwellForFormat(format)
				}
				if gap := inView.At.Sub(loaded.At); gap+opts.DwellTolerance < minDwell {
					add(ImpossibleDwell, src, fmt.Sprintf(
						"in-view %v after loaded; the standard requires ≥%v continuous exposure",
						gap, minDwell))
				}
			}
		}
		if hasInView && hasOut && !inView.At.IsZero() && !outView.At.IsZero() &&
			outView.At.Before(inView.At) {
			add(OrderViolation, src, "out-of-view precedes in-view")
		}
	}
	return findings
}

func dwellForFormat(format string) time.Duration {
	switch format {
	case "video":
		return viewability.StandardCriteria(viewability.Video).Dwell
	case "large-display":
		return viewability.StandardCriteria(viewability.LargeDisplay).Dwell
	default:
		return viewability.StandardCriteria(viewability.Display).Dwell
	}
}

package audit

import (
	"strings"
	"testing"
	"time"

	"qtag/internal/beacon"
	"qtag/internal/campaign"
)

var base = time.Date(2019, 12, 9, 12, 0, 0, 0, time.UTC)

func submit(t *testing.T, s *beacon.Store, e beacon.Event) {
	t.Helper()
	if err := s.Submit(e); err != nil {
		t.Fatal(err)
	}
}

func cleanImpression(t *testing.T, s *beacon.Store, imp string) {
	t.Helper()
	submit(t, s, beacon.Event{ImpressionID: imp, CampaignID: "c", Type: beacon.EventServed,
		At: base, Meta: beacon.Meta{Format: "display"}})
	submit(t, s, beacon.Event{ImpressionID: imp, CampaignID: "c", Source: beacon.SourceQTag,
		Type: beacon.EventLoaded, At: base.Add(50 * time.Millisecond)})
	submit(t, s, beacon.Event{ImpressionID: imp, CampaignID: "c", Source: beacon.SourceQTag,
		Type: beacon.EventInView, At: base.Add(1100 * time.Millisecond)})
	submit(t, s, beacon.Event{ImpressionID: imp, CampaignID: "c", Source: beacon.SourceQTag,
		Type: beacon.EventOutOfView, At: base.Add(3 * time.Second)})
}

func TestCleanStreamAuditsClean(t *testing.T) {
	s := beacon.NewStore()
	for _, imp := range []string{"a", "b", "c"} {
		cleanImpression(t, s, imp)
	}
	rep := Run(s, Options{})
	if !rep.Clean() {
		t.Fatalf("clean stream flagged: %v", rep.Findings)
	}
	if rep.Impressions != 3 || rep.CleanImpressions != 3 {
		t.Errorf("report = %+v", rep)
	}
	if !strings.Contains(rep.String(), "all clean") {
		t.Errorf("String = %q", rep.String())
	}
}

func TestOrphanMeasurement(t *testing.T) {
	s := beacon.NewStore()
	submit(t, s, beacon.Event{ImpressionID: "ghost", CampaignID: "c", Source: beacon.SourceQTag,
		Type: beacon.EventLoaded, At: base})
	rep := Run(s, Options{})
	if rep.ByKind[OrphanMeasurement] != 1 {
		t.Errorf("findings = %v", rep.Findings)
	}
}

func TestInViewWithoutLoaded(t *testing.T) {
	s := beacon.NewStore()
	submit(t, s, beacon.Event{ImpressionID: "i", CampaignID: "c", Type: beacon.EventServed, At: base})
	submit(t, s, beacon.Event{ImpressionID: "i", CampaignID: "c", Source: beacon.SourceCommercial,
		Type: beacon.EventInView, At: base.Add(2 * time.Second)})
	rep := Run(s, Options{})
	if rep.ByKind[InViewWithoutLoaded] != 1 {
		t.Errorf("findings = %v", rep.Findings)
	}
	if rep.Findings[0].Source != beacon.SourceCommercial {
		t.Error("finding should carry the offending source")
	}
}

func TestOutOfViewWithoutInView(t *testing.T) {
	s := beacon.NewStore()
	submit(t, s, beacon.Event{ImpressionID: "i", CampaignID: "c", Type: beacon.EventServed, At: base})
	submit(t, s, beacon.Event{ImpressionID: "i", CampaignID: "c", Source: beacon.SourceQTag,
		Type: beacon.EventLoaded, At: base})
	submit(t, s, beacon.Event{ImpressionID: "i", CampaignID: "c", Source: beacon.SourceQTag,
		Type: beacon.EventOutOfView, At: base.Add(time.Second)})
	rep := Run(s, Options{})
	if rep.ByKind[OutOfViewWithoutInView] != 1 {
		t.Errorf("findings = %v", rep.Findings)
	}
}

func TestImpossibleDwellCatchesSpoofedBeacons(t *testing.T) {
	s := beacon.NewStore()
	submit(t, s, beacon.Event{ImpressionID: "i", CampaignID: "c", Type: beacon.EventServed,
		At: base, Meta: beacon.Meta{Format: "display"}})
	submit(t, s, beacon.Event{ImpressionID: "i", CampaignID: "c", Source: beacon.SourceQTag,
		Type: beacon.EventLoaded, At: base})
	// In-view only 200ms after loaded: impossible for a 1s dwell.
	submit(t, s, beacon.Event{ImpressionID: "i", CampaignID: "c", Source: beacon.SourceQTag,
		Type: beacon.EventInView, At: base.Add(200 * time.Millisecond)})
	rep := Run(s, Options{})
	if rep.ByKind[ImpossibleDwell] != 1 {
		t.Errorf("findings = %v", rep.Findings)
	}
}

func TestVideoDwellUsed(t *testing.T) {
	s := beacon.NewStore()
	submit(t, s, beacon.Event{ImpressionID: "v", CampaignID: "c", Type: beacon.EventServed,
		At: base, Meta: beacon.Meta{Format: "video"}})
	submit(t, s, beacon.Event{ImpressionID: "v", CampaignID: "c", Source: beacon.SourceQTag,
		Type: beacon.EventLoaded, At: base})
	// 1.3s would satisfy display but not the 2s video dwell.
	submit(t, s, beacon.Event{ImpressionID: "v", CampaignID: "c", Source: beacon.SourceQTag,
		Type: beacon.EventInView, At: base.Add(1300 * time.Millisecond)})
	rep := Run(s, Options{})
	if rep.ByKind[ImpossibleDwell] != 1 {
		t.Errorf("video dwell not enforced: %v", rep.Findings)
	}
}

func TestOrderViolations(t *testing.T) {
	s := beacon.NewStore()
	submit(t, s, beacon.Event{ImpressionID: "i", CampaignID: "c", Type: beacon.EventServed, At: base})
	submit(t, s, beacon.Event{ImpressionID: "i", CampaignID: "c", Source: beacon.SourceQTag,
		Type: beacon.EventLoaded, At: base.Add(5 * time.Second)})
	submit(t, s, beacon.Event{ImpressionID: "i", CampaignID: "c", Source: beacon.SourceQTag,
		Type: beacon.EventInView, At: base.Add(2 * time.Second)}) // before loaded
	rep := Run(s, Options{})
	if rep.ByKind[OrderViolation] != 1 {
		t.Errorf("findings = %v", rep.Findings)
	}

	s2 := beacon.NewStore()
	submit(t, s2, beacon.Event{ImpressionID: "j", CampaignID: "c", Type: beacon.EventServed, At: base})
	submit(t, s2, beacon.Event{ImpressionID: "j", CampaignID: "c", Source: beacon.SourceQTag,
		Type: beacon.EventLoaded, At: base})
	submit(t, s2, beacon.Event{ImpressionID: "j", CampaignID: "c", Source: beacon.SourceQTag,
		Type: beacon.EventInView, At: base.Add(1200 * time.Millisecond)})
	submit(t, s2, beacon.Event{ImpressionID: "j", CampaignID: "c", Source: beacon.SourceQTag,
		Type: beacon.EventOutOfView, At: base.Add(600 * time.Millisecond)}) // before in-view
	rep2 := Run(s2, Options{})
	if rep2.ByKind[OrderViolation] != 1 {
		t.Errorf("findings = %v", rep2.Findings)
	}
}

// TestProductionSimulationAuditsClean is the transparency claim end to
// end: everything this repository's full pipeline produces must survive
// its own auditor.
func TestProductionSimulationAuditsClean(t *testing.T) {
	res := campaign.New(campaign.Config{
		Seed: 17, Campaigns: 10, ImpressionsPerCampaign: 60, BothCampaigns: 4,
	}).Run()
	rep := Run(res.Store, Options{})
	if !rep.Clean() {
		max := 5
		if len(rep.Findings) < max {
			max = len(rep.Findings)
		}
		t.Fatalf("production pipeline flagged: %s; first findings: %v",
			rep, rep.Findings[:max])
	}
	if rep.Impressions == 0 {
		t.Fatal("audit saw no impressions")
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []FindingKind{OrphanMeasurement, InViewWithoutLoaded, OutOfViewWithoutInView, ImpossibleDwell, OrderViolation}
	for _, k := range kinds {
		if strings.Contains(k.String(), "FindingKind") {
			t.Errorf("kind %d missing name", int(k))
		}
	}
	if FindingKind(42).String() != "FindingKind(42)" {
		t.Error("unknown kind string wrong")
	}
	f := Finding{Kind: ImpossibleDwell, CampaignID: "c", ImpressionID: "i", Source: beacon.SourceQTag, Detail: "d"}
	if !strings.Contains(f.String(), "impossible-dwell") {
		t.Errorf("finding String = %q", f.String())
	}
}

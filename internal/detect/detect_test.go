package detect_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"qtag/internal/beacon"
	. "qtag/internal/detect"
)

var t0 = time.Unix(1700000000, 0).UTC()

// harness wires a detector to a dedup store on both hooks — the exact
// production wiring.
func harness(opts Options) (*beacon.Store, *Detector) {
	opts.TTL = -1
	if opts.Now == nil {
		opts.Now = func() time.Time { return t0 }
	}
	det := New(opts)
	store := beacon.NewStore()
	store.AddObserver(det.Observe)
	store.AddDupObserver(det.ObserveDup)
	return store, det
}

// rowFor finds one campaign × source row in a snapshot.
func rowFor(t *testing.T, s Snapshot, campaign, source string) ScoreRow {
	t.Helper()
	for _, r := range s.Rows {
		if r.CampaignID == campaign && r.Source == source {
			return r
		}
	}
	t.Fatalf("no row for %s/%s in %+v", campaign, source, s.Rows)
	return ScoreRow{}
}

// honestImpression submits a full clean lifecycle: served, loaded,
// in-view, out-of-view after dwell, spread over distinct placements.
func honestImpression(store *beacon.Store, camp string, i int, at time.Time, dwell time.Duration) {
	imp := fmt.Sprintf("%s-imp-%d", camp, i)
	meta := beacon.Meta{AdSize: "300x250", Slot: fmt.Sprintf("slot-%d", i%24)}
	store.Submit(beacon.Event{ImpressionID: imp, CampaignID: camp, Type: beacon.EventServed, At: at, Meta: meta})
	store.Submit(beacon.Event{ImpressionID: imp, CampaignID: camp, Source: beacon.SourceQTag, Type: beacon.EventLoaded, At: at.Add(50 * time.Millisecond), Meta: meta})
	store.Submit(beacon.Event{ImpressionID: imp, CampaignID: camp, Source: beacon.SourceQTag, Type: beacon.EventInView, At: at.Add(300 * time.Millisecond), Meta: meta})
	store.Submit(beacon.Event{ImpressionID: imp, CampaignID: camp, Source: beacon.SourceQTag, Type: beacon.EventOutOfView, At: at.Add(300*time.Millisecond + dwell), Meta: meta})
}

// TestHonestTrafficScoresZero: a clean campaign never flags and every
// contribution stays at zero.
func TestHonestTrafficScoresZero(t *testing.T) {
	store, det := harness(Options{})
	for i := 0; i < 60; i++ {
		honestImpression(store, "camp-honest", i, t0.Add(time.Duration(i)*3*time.Second), 2500*time.Millisecond+time.Duration(i)*37*time.Millisecond)
	}
	snap := det.Snapshot()
	if len(snap.Flagged) != 0 {
		t.Fatalf("honest traffic flagged campaigns %v", snap.Flagged)
	}
	for _, r := range snap.Rows {
		if r.Score != 0 {
			t.Fatalf("honest row %s/%s scored %.2f: %+v", r.CampaignID, r.Source, r.Score, r.Contribs)
		}
	}
}

// TestRateDetector: a bot burst minting distinct impressions at
// hundreds per second trips the rate detector; the slow honest
// campaign next to it does not.
func TestRateDetector(t *testing.T) {
	store, det := harness(Options{})
	for i := 0; i < 500; i++ {
		store.Submit(beacon.Event{
			ImpressionID: fmt.Sprintf("bot-%d", i),
			CampaignID:   "camp-burst",
			Type:         beacon.EventServed,
			At:           t0.Add(time.Duration(i) * 4 * time.Millisecond), // 250/s
		})
	}
	for i := 0; i < 100; i++ {
		store.Submit(beacon.Event{
			ImpressionID: fmt.Sprintf("slow-%d", i),
			CampaignID:   "camp-slow",
			Type:         beacon.EventServed,
			At:           t0.Add(time.Duration(i) * 2 * time.Second),
		})
	}
	snap := det.Snapshot()
	burst := rowFor(t, snap, "camp-burst", SourceDSP)
	if burst.Contribs[DetectorRate] < 0.5 || !burst.Flagged {
		t.Fatalf("burst row not flagged by rate: %+v", burst)
	}
	slow := rowFor(t, snap, "camp-slow", SourceDSP)
	if slow.Contribs[DetectorRate] != 0 {
		t.Fatalf("slow row tripped rate detector: %+v", slow)
	}
	if len(snap.Flagged) != 1 || snap.Flagged[0] != "camp-burst" {
		t.Fatalf("flagged = %v, want [camp-burst]", snap.Flagged)
	}
}

// TestRateDetectorLongHonestRun: the ring aliases once the campaign
// outlives RateSlots buckets, folding many buckets into each slot. The
// score must normalize that accumulation away — a modest honest rate
// sustained for many ring wraps (~10 ev/s for 16 min here, ~9,600
// events over 15 wraps of the default 64×1s ring) stays at zero, while
// a genuinely high sustained rate over the same aliased extent still
// scores.
func TestRateDetectorLongHonestRun(t *testing.T) {
	store, det := harness(Options{})
	const honestPerSec, honestSecs = 10, 960
	for s := 0; s < honestSecs; s++ {
		for j := 0; j < honestPerSec; j++ {
			store.Submit(beacon.Event{
				ImpressionID: fmt.Sprintf("h-%d-%d", s, j),
				CampaignID:   "camp-long-honest",
				Type:         beacon.EventServed,
				At:           t0.Add(time.Duration(s)*time.Second + time.Duration(j)*100*time.Millisecond),
			})
		}
	}
	const botPerSec, botSecs = 200, 400
	for s := 0; s < botSecs; s++ {
		for j := 0; j < botPerSec; j++ {
			store.Submit(beacon.Event{
				ImpressionID: fmt.Sprintf("b-%d-%d", s, j),
				CampaignID:   "camp-long-bot",
				Type:         beacon.EventServed,
				At:           t0.Add(time.Duration(s)*time.Second + time.Duration(j)*5*time.Millisecond),
			})
		}
	}
	snap := det.Snapshot()
	honest := rowFor(t, snap, "camp-long-honest", SourceDSP)
	if honest.Contribs[DetectorRate] != 0 || honest.Flagged {
		t.Fatalf("long honest run tripped the rate detector: %+v", honest)
	}
	bot := rowFor(t, snap, "camp-long-bot", SourceDSP)
	if bot.Contribs[DetectorRate] < 0.5 || !bot.Flagged {
		t.Fatalf("sustained bot rate not flagged after aliasing normalization: %+v", bot)
	}
}

// TestLateServedAfterRowEviction: a late served event must not
// resurrect a row the MaxRows cap already dropped just to un-count its
// frozen violations — eviction freezes, it never un-counts. With the
// buggy resurrection the recreated row starts at seqNoServe=-1 and the
// two fresh violations below would score (2-1)/2 → ~0.7 instead of 1.
func TestLateServedAfterRowEviction(t *testing.T) {
	store, det := harness(Options{Shards: 1, MaxRows: 1})
	loaded := func(imp string) beacon.Event {
		return beacon.Event{
			ImpressionID: imp, CampaignID: "camp-a",
			Source: beacon.SourceQTag, Type: beacon.EventLoaded, At: t0,
		}
	}
	// Violation counted on camp-a/qtag, then the row is evicted by an
	// unrelated campaign's row creation (MaxRows=1, single shard).
	store.Submit(loaded("a-1"))
	store.Submit(beacon.Event{ImpressionID: "b-1", CampaignID: "camp-b", Type: beacon.EventServed, At: t0})
	// The served event for a-1 arrives late: its impression state still
	// holds noServeCounted, but the counted row is gone.
	store.Submit(beacon.Event{ImpressionID: "a-1", CampaignID: "camp-a", Type: beacon.EventServed, At: t0})
	// Fresh violations recreate the row; they must score at full weight.
	store.Submit(loaded("a-2"))
	store.Submit(loaded("a-3"))
	r := rowFor(t, det.Snapshot(), "camp-a", "qtag")
	if r.Contribs[DetectorSequence] != 1 {
		t.Fatalf("recreated row inherited a negative violation count: %+v", r)
	}
}

// TestFlaggedCampaignsMatchesSnapshot: the cheap scrape-path count
// agrees with the full snapshot's flagged set on a mixed workload.
func TestFlaggedCampaignsMatchesSnapshot(t *testing.T) {
	store, det := harness(Options{})
	for i := 0; i < 60; i++ {
		honestImpression(store, "camp-clean", i, t0.Add(time.Duration(i)*3*time.Second), 2500*time.Millisecond)
		store.Submit(beacon.Event{
			ImpressionID: fmt.Sprintf("spoof-%d", i), CampaignID: "camp-spoof",
			Source: beacon.SourceQTag, Type: beacon.EventInView, At: t0.Add(time.Duration(i) * time.Second),
		})
		store.Submit(beacon.Event{
			ImpressionID: fmt.Sprintf("px-%d", i), CampaignID: "camp-pixel",
			Type: beacon.EventServed, At: t0.Add(time.Duration(i) * time.Second),
			Meta: beacon.Meta{AdSize: "1x1"},
		})
	}
	snap := det.Snapshot()
	if got, want := det.FlaggedCampaigns(), len(snap.Flagged); got != want {
		t.Fatalf("FlaggedCampaigns() = %d, snapshot flags %v", got, snap.Flagged)
	}
	if len(snap.Flagged) != 2 {
		t.Fatalf("workload should flag exactly the two fraud campaigns, got %v", snap.Flagged)
	}
}

// TestDwellDetector: dwell massed exactly at the viewability
// threshold (scripted beacons) and at ~0 (hidden inventory) both
// trip the dwell detector.
func TestDwellDetector(t *testing.T) {
	store, det := harness(Options{})
	at := t0
	for i := 0; i < 30; i++ {
		imp := fmt.Sprintf("exact-%d", i)
		store.Submit(beacon.Event{ImpressionID: imp, CampaignID: "camp-exact", Source: beacon.SourceQTag, Type: beacon.EventInView, At: at})
		store.Submit(beacon.Event{ImpressionID: imp, CampaignID: "camp-exact", Source: beacon.SourceQTag, Type: beacon.EventOutOfView, At: at.Add(time.Second)})
		imp = fmt.Sprintf("zero-%d", i)
		store.Submit(beacon.Event{ImpressionID: imp, CampaignID: "camp-zero", Source: beacon.SourceQTag, Type: beacon.EventInView, At: at})
		store.Submit(beacon.Event{ImpressionID: imp, CampaignID: "camp-zero", Source: beacon.SourceQTag, Type: beacon.EventOutOfView, At: at.Add(5 * time.Millisecond)})
		at = at.Add(2 * time.Second)
	}
	snap := det.Snapshot()
	for _, camp := range []string{"camp-exact", "camp-zero"} {
		r := rowFor(t, snap, camp, "qtag")
		if r.Contribs[DetectorDwell] != 1 || !r.Flagged {
			t.Fatalf("%s not flagged by dwell: %+v", camp, r)
		}
	}
}

// TestSequenceDetector: spoofed in-view beacons with no served and no
// loaded behind them max the sequence score; a late-arriving served +
// loaded un-counts the violations (net-adjusting flags), so ordering
// noise cannot fake fraud.
func TestSequenceDetector(t *testing.T) {
	store, det := harness(Options{})
	for i := 0; i < 40; i++ {
		store.Submit(beacon.Event{
			ImpressionID: fmt.Sprintf("spoof-%d", i),
			CampaignID:   "camp-spoof",
			Source:       beacon.SourceQTag,
			Type:         beacon.EventInView,
			At:           t0.Add(time.Duration(i) * time.Second),
		})
	}
	r := rowFor(t, det.Snapshot(), "camp-spoof", "qtag")
	if r.Contribs[DetectorSequence] != 1 || !r.Flagged {
		t.Fatalf("spoofed in-views not flagged by sequence: %+v", r)
	}

	// Late lifecycle events arrive: every violation un-counts.
	for i := 0; i < 40; i++ {
		imp := fmt.Sprintf("spoof-%d", i)
		at := t0.Add(time.Duration(i) * time.Second)
		store.Submit(beacon.Event{ImpressionID: imp, CampaignID: "camp-spoof", Type: beacon.EventServed, At: at})
		store.Submit(beacon.Event{ImpressionID: imp, CampaignID: "camp-spoof", Source: beacon.SourceQTag, Type: beacon.EventLoaded, At: at})
	}
	r = rowFor(t, det.Snapshot(), "camp-spoof", "qtag")
	if r.Contribs[DetectorSequence] != 0 {
		t.Fatalf("late lifecycle did not clear sequence violations: %+v", r)
	}
}

// TestDuplicateDetector: replayed byte-identical beacons are absorbed
// by the store's dedup but surface as a flood score.
func TestDuplicateDetector(t *testing.T) {
	store, det := harness(Options{})
	events := make([]beacon.Event, 0, 30)
	for i := 0; i < 30; i++ {
		e := beacon.Event{
			ImpressionID: fmt.Sprintf("replay-%d", i),
			CampaignID:   "camp-replay",
			Source:       beacon.SourceQTag,
			Type:         beacon.EventLoaded,
			At:           t0.Add(time.Duration(i) * time.Second),
		}
		events = append(events, e)
		store.Submit(e)
	}
	for pass := 0; pass < 5; pass++ { // the replay farm
		for _, e := range events {
			store.Submit(e)
		}
	}
	r := rowFor(t, det.Snapshot(), "camp-replay", "qtag")
	if r.Dups != 150 || r.Events != 30 {
		t.Fatalf("dup accounting wrong: %+v", r)
	}
	if r.Contribs[DetectorDuplicate] != 1 || !r.Flagged {
		t.Fatalf("replay flood not flagged by duplicate: %+v", r)
	}
	if det.DupEvents() != 150 {
		t.Fatalf("DupEvents = %d, want 150", det.DupEvents())
	}
}

// TestGeometryDetector: 1×1 creative sizes and single-slot in-view
// concentration each trip the geometry detector.
func TestGeometryDetector(t *testing.T) {
	store, det := harness(Options{})
	for i := 0; i < 30; i++ {
		at := t0.Add(time.Duration(i) * time.Second)
		store.Submit(beacon.Event{
			ImpressionID: fmt.Sprintf("px-%d", i), CampaignID: "camp-pixel",
			Type: beacon.EventServed, At: at, Meta: beacon.Meta{AdSize: "1x1"},
		})
		store.Submit(beacon.Event{
			ImpressionID: fmt.Sprintf("stack-%d", i), CampaignID: "camp-stack",
			Source: beacon.SourceQTag, Type: beacon.EventInView, At: at,
			Meta: beacon.Meta{AdSize: "300x250", Slot: "the-one-slot"},
		})
	}
	snap := det.Snapshot()
	px := rowFor(t, snap, "camp-pixel", SourceDSP)
	if px.Contribs[DetectorGeometry] != 1 || !px.Flagged {
		t.Fatalf("pixel stuffing not flagged by geometry: %+v", px)
	}
	st := rowFor(t, snap, "camp-stack", "qtag")
	if st.Contribs[DetectorGeometry] != 1 || !st.Flagged {
		t.Fatalf("stacking not flagged by geometry: %+v", st)
	}
}

// TestMinEventsGate: a tiny row never flags no matter how anomalous.
func TestMinEventsGate(t *testing.T) {
	store, det := harness(Options{MinEvents: 25})
	for i := 0; i < 5; i++ {
		store.Submit(beacon.Event{
			ImpressionID: fmt.Sprintf("s-%d", i), CampaignID: "camp-tiny",
			Source: beacon.SourceQTag, Type: beacon.EventInView, At: t0,
		})
	}
	r := rowFor(t, det.Snapshot(), "camp-tiny", "qtag")
	if r.Flagged {
		t.Fatalf("5-event row flagged: %+v", r)
	}
	if r.Score == 0 {
		t.Fatalf("contributions should still be reported: %+v", r)
	}
}

// TestScoresBounded: every contribution and composite stays in [0,1].
func TestScoresBounded(t *testing.T) {
	store, det := harness(Options{})
	for i := 0; i < 2000; i++ {
		store.Submit(beacon.Event{
			ImpressionID: fmt.Sprintf("x-%d", i%50),
			CampaignID:   fmt.Sprintf("c-%d", i%7),
			Source:       beacon.SourceQTag,
			Type:         []beacon.EventType{beacon.EventLoaded, beacon.EventInView, beacon.EventOutOfView}[i%3],
			At:           t0.Add(time.Duration(i%13) * time.Millisecond),
			Seq:          i % 2,
			Meta:         beacon.Meta{AdSize: "1x1", Slot: "s"},
		})
	}
	for _, r := range det.Snapshot().Rows {
		if r.Score < 0 || r.Score > 1 {
			t.Fatalf("composite out of range: %+v", r)
		}
		for k, v := range r.Contribs {
			if v < 0 || v > 1 {
				t.Fatalf("contribution %s out of range: %+v", k, r)
			}
		}
	}
}

// TestSweepAndPressureEviction: TTL sweeps and the MaxOpen cap bound
// the open working set while row totals freeze rather than reset.
func TestSweepAndPressureEviction(t *testing.T) {
	clock := t0
	det := New(Options{TTL: time.Minute, MaxOpen: 50, Now: func() time.Time { return clock }})
	store := beacon.NewStore()
	store.AddObserver(det.Observe)
	for i := 0; i < 200; i++ {
		store.Submit(beacon.Event{
			ImpressionID: fmt.Sprintf("i-%d", i), CampaignID: "c",
			Source: beacon.SourceQTag, Type: beacon.EventLoaded, At: t0,
		})
	}
	// The pressure cap is per-shard approximate; allow one straggler
	// per shard over the cap.
	if open := det.OpenImpressions(); open > 50+16 {
		t.Fatalf("open = %d, cap 50 not enforced", open)
	}
	clock = clock.Add(2 * time.Minute)
	if n := det.Sweep(clock); n == 0 {
		t.Fatal("sweep evicted nothing")
	}
	if det.OpenImpressions() != 0 {
		t.Fatalf("open = %d after sweep", det.OpenImpressions())
	}
	r := rowFor(t, det.Snapshot(), "c", "qtag")
	if r.Events != 200 {
		t.Fatalf("eviction reset row totals: %+v", r)
	}
}

// TestMaxRowsCap: the score-row working set stays bounded; cold
// campaigns fall off rather than the table growing without bound.
func TestMaxRowsCap(t *testing.T) {
	store, det := harness(Options{MaxRows: 32})
	for i := 0; i < 500; i++ {
		store.Submit(beacon.Event{
			ImpressionID: fmt.Sprintf("i-%d", i),
			CampaignID:   fmt.Sprintf("c-%d", i), // distinct campaign per event
			Type:         beacon.EventServed,
			At:           t0,
		})
	}
	if rows := det.Rows(); rows > 32+16 {
		t.Fatalf("rows = %d, cap 32 not enforced", rows)
	}
}

// TestTextRender: the table renderer names flagged campaigns and
// their leading detector.
func TestTextRender(t *testing.T) {
	store, det := harness(Options{})
	for i := 0; i < 40; i++ {
		store.Submit(beacon.Event{
			ImpressionID: fmt.Sprintf("spoof-%d", i), CampaignID: "camp-bad",
			Source: beacon.SourceQTag, Type: beacon.EventInView, At: t0.Add(time.Duration(i) * time.Second),
		})
	}
	out := det.Snapshot().Text()
	for _, want := range []string{"camp-bad", "FLAG", "sequence=1.00", "flagged campaigns: camp-bad"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if empty := (Snapshot{}).Text(); !strings.Contains(empty, "no scored rows") {
		t.Fatalf("empty render = %q", empty)
	}
}

package detect

import (
	"fmt"
	"sort"
	"strings"

	"qtag/internal/beacon"
)

// ScoreRow is one campaign × solution line of the fraud report. Score
// is the composite (the max of the per-detector contributions);
// Flagged applies the threshold and the MinEvents volume gate.
type ScoreRow struct {
	CampaignID  string             `json:"campaign_id"`
	Source      string             `json:"source"`
	Events      int64              `json:"events"`
	Dups        int64              `json:"dups"`
	Impressions int64              `json:"impressions"`
	Score       float64            `json:"score"`
	Flagged     bool               `json:"flagged"`
	Contribs    map[string]float64 `json:"contributions"`
}

// Snapshot is the detector's full deterministic state: rows sorted by
// (campaign, source), plus the distinct flagged campaign ids. Two
// detectors fed the same deduplicated event set plus the same
// duplicate submissions — in any order, at any concurrency, across
// any crash/WAL-replay boundary — produce DeepEqual snapshots (no
// eviction having fired), which is the property the fraud-chaos suite
// pins down.
type Snapshot struct {
	Rows []ScoreRow `json:"rows"`
	// Flagged is the sorted set of campaigns with ≥1 flagged row.
	Flagged []string `json:"flagged_campaigns,omitempty"`
}

// Snapshot scores every live row. Scores are computed here, from the
// commutative counters, never during ingest — so they inherit the
// counters' order-insensitivity.
func (d *Detector) Snapshot() Snapshot {
	var snap Snapshot
	flagged := map[string]bool{}
	for i := range d.camps {
		cs := &d.camps[i]
		cs.mu.Lock()
		for k, r := range cs.rows {
			sr := d.score(k, r)
			if sr.Flagged {
				flagged[k.Campaign] = true
			}
			snap.Rows = append(snap.Rows, sr)
		}
		cs.mu.Unlock()
	}
	sort.Slice(snap.Rows, func(i, j int) bool {
		a, b := snap.Rows[i], snap.Rows[j]
		if a.CampaignID != b.CampaignID {
			return a.CampaignID < b.CampaignID
		}
		return a.Source < b.Source
	})
	for c := range flagged {
		snap.Flagged = append(snap.Flagged, c)
	}
	sort.Strings(snap.Flagged)
	return snap
}

// score derives one row's contributions. Caller holds the row shard
// lock.
func (d *Detector) score(k rowKey, r *row) ScoreRow {
	o := d.opts
	c := map[string]float64{
		DetectorRate:      rateScore(r, o),
		DetectorDwell:     dwellScore(r),
		DetectorSequence:  sequenceScore(r),
		DetectorDuplicate: duplicateScore(r),
		DetectorGeometry:  geometryScore(r),
	}
	composite := 0.0
	for _, v := range c {
		if v > composite {
			composite = v
		}
	}
	return ScoreRow{
		CampaignID:  k.Campaign,
		Source:      k.Source,
		Events:      r.events,
		Dups:        r.dups,
		Impressions: r.impressions,
		Score:       composite,
		Flagged:     composite >= o.FlagThreshold && r.events+r.dups >= o.MinEvents,
		Contribs:    c,
	}
}

// flaggedLocked reports whether a row would flag, without building the
// contribution map a full score does. Equivalent to score(k, r).Flagged
// because the composite is the max of the contributions: some detector
// clears the threshold iff the max does. Caller holds the row shard
// lock.
func (d *Detector) flaggedLocked(r *row) bool {
	o := d.opts
	if r.events+r.dups < o.MinEvents {
		return false
	}
	t := o.FlagThreshold
	return rateScore(r, o) >= t || duplicateScore(r) >= t || sequenceScore(r) >= t ||
		dwellScore(r) >= t || geometryScore(r) >= t
}

// FlaggedCampaigns counts distinct campaigns with at least one flagged
// row. It is the metrics-scrape path behind the
// qtag_detect_flagged_campaigns gauge, so unlike Snapshot it allocates
// no rows, sorts nothing, skips rows under the MinEvents gate outright,
// and short-circuits campaigns already counted — each shard lock is
// held only for the cheap threshold checks.
func (d *Detector) FlaggedCampaigns() int {
	flagged := map[string]bool{}
	for i := range d.camps {
		cs := &d.camps[i]
		cs.mu.Lock()
		for k, r := range cs.rows {
			if flagged[k.Campaign] {
				continue
			}
			if d.flaggedLocked(r) {
				flagged[k.Campaign] = true
			}
		}
		cs.mu.Unlock()
	}
	return len(flagged)
}

// clamp01 bounds a ramp into [0,1]; NaN (0/0 ramps) clamps to 0.
func clamp01(v float64) float64 {
	if !(v > 0) { // catches NaN too
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// ramp maps v linearly from [lo,hi] onto [0,1].
func ramp(v, lo, hi float64) float64 { return clamp01((v - lo) / (hi - lo)) }

// rateScore: the admission limiter's EWMA-vs-baseline gradient
// restated in event time. The absolute term fires when the peak
// bucket exceeds plausible human arrival rates outright; the relative
// term fires when the peak gradients far past the row's own mean
// bucket — a burst inside otherwise-calm traffic.
func rateScore(r *row, o Options) float64 {
	if r.events == 0 {
		return 0
	}
	var peak int64
	for _, c := range r.slots {
		if c > peak {
			peak = c
		}
	}
	// Once the observed bucket extent exceeds the ring, aliasing folds
	// ~wraps distinct buckets into every slot, so the peak slot holds a
	// lifetime accumulation, not a 1-bucket count. Normalize it back to
	// an estimated single-bucket peak — otherwise a long-lived honest
	// row ramps the absolute score by sheer age (64 slots × 1s wraps
	// every minute; ~10 ev/s sustained for 15 min would read as 150/s).
	slots := int64(len(r.slots))
	span := r.maxB - r.minB + 1
	wraps := (span + slots - 1) / slots
	if wraps < 1 {
		wraps = 1
	}
	bucketSec := o.RateBucket.Seconds()
	peakRate := float64(peak) / float64(wraps) / bucketSec
	absolute := ramp(peakRate, o.RateBaseline, o.RateMax)

	// Mean events per *slot*: the span clamps to the ring for the same
	// aliasing reason, so the raw peak and the mean compare in the same
	// folded space and the burst ratio needs no wrap correction.
	spanSlots := float64(span)
	if s := float64(slots); spanSlots > s {
		spanSlots = s
	}
	mean := float64(r.events) / spanSlots
	burst := ramp(float64(peak)/mean, o.BurstTolerance, o.BurstMax)
	if burst > absolute {
		return burst
	}
	return absolute
}

// dwellScore: share of completed dwell cycles massed at ~0 (hidden or
// stuffed inventory reporting instant visibility loss) or at exactly
// the viewability threshold (scripted beacons emitting the minimum
// dwell the standard requires). Honest dwell is broadly spread.
func dwellScore(r *row) float64 {
	if r.dwellPairs < minDwellPairs {
		return 0
	}
	ratio := float64(r.dwellZero+r.dwellExact) / float64(r.dwellPairs)
	return ramp(ratio, dwellRatioMin, dwellRatioMax)
}

// sequenceScore: lifecycle violations per impression. Spoofed beacons
// have no real lifecycle behind them — in-view without the tag's
// loaded check-in, solution beacons on impressions the DSP never
// served, out-of-view with no in-view. Honest traffic under lossy
// delivery shows a few of these; fabricated traffic is mostly these.
func sequenceScore(r *row) float64 {
	if r.impressions == 0 {
		return 0
	}
	viol := r.seqNoLoad + r.seqNoServe + r.seqOrphanOut
	ratio := float64(viol) / float64(r.impressions)
	return ramp(ratio, seqRatioMin, seqRatioMax)
}

// duplicateScore: duplicate share of all submissions. Idempotent
// ingest makes replayed beacons invisible to every counter — this is
// the one place a replay farm's traffic shows up at all.
func duplicateScore(r *row) float64 {
	total := r.events + r.dups
	if total == 0 {
		return 0
	}
	ratio := float64(r.dups) / float64(total)
	return ramp(ratio, dupRatioMin, dupRatioMax)
}

// geometryScore: degenerate creative sizes (1×1 pixel stuffing) or
// in-views concentrated on one publisher placement (ad stacking — a
// pile of creatives occupying a single slot, each claiming the view).
func geometryScore(r *row) float64 {
	var pixel float64
	if r.sized > 0 {
		pixel = ramp(float64(r.pixel)/float64(r.sized), pixelRatioMin, pixelRatioMax)
	}
	var stack float64
	var top, total int64
	for _, n := range r.slotViews {
		total += n
		if n > top {
			top = n
		}
	}
	total += r.slotOther
	if total >= minStackViews {
		stack = ramp(float64(top)/float64(total), stackShareMin, stackShareMax)
	}
	if stack > pixel {
		return stack
	}
	return pixel
}

// Recompute is the batch oracle the streaming path is proven against:
// it rebuilds a detector from scratch by pushing the raw submission
// log — first-seen events *and* duplicates, exactly what the WAL
// journals — through a fresh deduplicating store with the detector on
// both hooks, the same wiring a live server uses. TTL eviction is
// disabled (a batch recompute sees all of history at once).
func Recompute(submissions []beacon.Event, opts Options) *Detector {
	opts = opts.withDefaults()
	opts.TTL = -1
	det := New(opts)
	store := beacon.NewStore()
	store.AddObserver(det.Observe)
	store.AddDupObserver(det.ObserveDup)
	for _, e := range submissions {
		_ = store.Submit(e) // invalid events are skipped, as at ingest
	}
	return det
}

// Text renders the snapshot as the aligned table qtag-replay -report
// prints. Empty snapshots render a single line so the caller need not
// special-case them.
func (s Snapshot) Text() string {
	if len(s.Rows) == 0 {
		return "fraud: no scored rows\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %-12s %8s %8s %7s  %5s  %s\n",
		"CAMPAIGN", "SOURCE", "EVENTS", "DUPS", "SCORE", "FLAG", "TOP DETECTORS")
	for _, r := range s.Rows {
		flag := ""
		if r.Flagged {
			flag = "FLAG"
		}
		fmt.Fprintf(&b, "%-24s %-12s %8d %8d %7.2f  %5s  %s\n",
			r.CampaignID, r.Source, r.Events, r.Dups, r.Score, flag, topContribs(r.Contribs))
	}
	if len(s.Flagged) > 0 {
		fmt.Fprintf(&b, "flagged campaigns: %s\n", strings.Join(s.Flagged, ", "))
	}
	return b.String()
}

// topContribs lists the nonzero contributions, largest first, in
// "name=0.87" form.
func topContribs(c map[string]float64) string {
	type kv struct {
		k string
		v float64
	}
	var parts []kv
	for _, name := range Detectors {
		if v := c[name]; v > 0 {
			parts = append(parts, kv{name, v})
		}
	}
	sort.SliceStable(parts, func(i, j int) bool { return parts[i].v > parts[j].v })
	if len(parts) == 0 {
		return "-"
	}
	out := make([]string, len(parts))
	for i, p := range parts {
		out[i] = fmt.Sprintf("%s=%.2f", p.k, p.v)
	}
	return strings.Join(out, " ")
}

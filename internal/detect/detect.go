// Package detect is the streaming fraud/anomaly layer: a second
// consumer of the beacon store's first-seen observer hook, alongside
// internal/aggregate. Where aggregate answers "what happened", detect
// answers "should we believe it" — the paper's premise is that
// inventory lies about viewability, and Marciel et al. (PAPERS.md)
// show fraudulent traffic dominating the error budget in the wild.
//
// Five detectors score every campaign × solution row:
//
//	rate       beacon rate-of-change: event-time peak bucket rate vs the
//	           row's own baseline (the admission limiter's EWMA-vs-
//	           decaying-minimum idiom, folded into event time so replay
//	           rebuilds it); catches bot farms minting impressions
//	           faster than humans browse
//	dwell      impossible dwell histograms: in-view/out-of-view pairs
//	           whose dwell masses at ~0 (hidden/stuffed inventory) or at
//	           exactly the viewability threshold (scripted beacons)
//	sequence   lifecycle ordering breaks: in-view with no tag check-in,
//	           solution beacons with no served event, out-of-view with
//	           no in-view — spoofed beacons have no real lifecycle
//	duplicate  flood score from the store's duplicate-submission hook:
//	           replayed captured beacons are byte-identical, so they
//	           dedup — invisible to counters, loud here
//	geometry   1×1-pixel creative sizes and stacked placements (all
//	           in-views concentrated on one publisher slot)
//
// Every accumulator is commutative — counts that depend only on the
// final deduplicated event set, never on arrival order — and scores
// are derived from those counts at Snapshot time only. That is what
// makes a detector rebuilt by WAL replay on boot DeepEqual one that
// watched the traffic live (the property the fraud-chaos suite
// enforces), exactly mirroring aggregate's streaming ≡ batch oracle.
// Working state is bounded the same way aggregate bounds its: per-
// impression pairing state falls to TTL sweeps and a MaxOpen pressure
// cap, score rows to a MaxRows cap, per-row placement maps to
// MaxSlots.
package detect

import (
	"sync"
	"sync/atomic"
	"time"

	"qtag/internal/beacon"
	"qtag/internal/obs"
)

// Detector contribution names, in the order Text renders them.
const (
	DetectorRate      = "rate"
	DetectorDwell     = "dwell"
	DetectorSequence  = "sequence"
	DetectorDuplicate = "duplicate"
	DetectorGeometry  = "geometry"
)

// Detectors lists every contribution key a ScoreRow carries.
var Detectors = []string{DetectorRate, DetectorDwell, DetectorSequence, DetectorDuplicate, DetectorGeometry}

// SourceDSP labels the served-event row: served beacons carry no
// measurement source, but their rate/duplicate behaviour is still
// scoreable.
const SourceDSP = "dsp"

// Options tunes a Detector. The zero value picks sensible defaults;
// the score ramp knobs are exported so operators can re-tune per
// inventory mix without recompiling.
type Options struct {
	// Shards is the lock-stripe count for both the per-impression
	// working state and the score rows, rounded up to a power of two
	// (default 16, matching the beacon store and aggregate).
	Shards int
	// TTL evicts an impression's pairing/sequencing state after this
	// much arrival-clock idle time (default 15m; <0 disables, 0 means
	// default). Row counters keep their totals — eviction freezes, it
	// never un-counts. As with aggregate, TTL must exceed the longest
	// served→last-beacon gap or late beacons re-open state and shift
	// sequence counts.
	TTL time.Duration
	// MaxOpen caps open impression working states across all shards
	// (0: unbounded). Over the cap, the least-recently-touched
	// impression in the inserting shard is evicted immediately.
	MaxOpen int
	// MaxRows caps score rows (campaign × solution) across all shards
	// (default 4096). Over the cap the least-recently-touched row in
	// the inserting shard is dropped entirely — working-set semantics:
	// a cold campaign's scores vanish rather than the process growing
	// without bound.
	MaxRows int
	// RateBucket is the event-time bucket width for the rate detector
	// (default 1s).
	RateBucket time.Duration
	// RateSlots is the fixed per-row bucket ring size (default 64).
	// Bucket indices alias into the ring modulo RateSlots, which keeps
	// memory constant and — because aliasing depends only on the
	// event's timestamp — keeps the fold order-insensitive.
	RateSlots int
	// RateBaseline and RateMax ramp the absolute peak-rate score:
	// a peak bucket at RateBaseline events/sec scores 0, at RateMax
	// scores 1 (defaults 50 and 250).
	RateBaseline float64
	RateMax      float64
	// BurstTolerance and BurstMax ramp the relative burst score: the
	// peak-to-mean bucket ratio at which the score leaves 0 and hits 1
	// (defaults 4 and 16) — the EWMA-vs-baseline gradient restated in
	// event time.
	BurstTolerance float64
	BurstMax       float64
	// MaxSlots caps the per-row placement→in-view map for the stacking
	// detector (default 64); overflow slots fold into an "other"
	// bucket.
	MaxSlots int
	// DwellTarget is the viewability-standard dwell the "exactly at
	// threshold" detector keys on (default 1s, the IAB display
	// standard the paper's tags implement).
	DwellTarget time.Duration
	// DwellZeroMax: a paired dwell at or under this counts as
	// zero-dwell (default 100ms).
	DwellZeroMax time.Duration
	// DwellExactTol: |dwell − DwellTarget| at or under this counts as
	// exactly-threshold (default 50ms).
	DwellExactTol time.Duration
	// FlagThreshold is the composite score at which a row is flagged
	// (default 0.5).
	FlagThreshold float64
	// MinEvents gates flagging: rows with fewer total submissions
	// (first-seen + duplicates) never flag, whatever their ratios —
	// three weird beacons are noise, three hundred are a signal
	// (default 25).
	MinEvents int64
	// Now is the arrival clock driving TTL/pressure eviction (default
	// time.Now). Never used in scoring — scores are event-time only.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 16
	}
	if o.TTL == 0 {
		o.TTL = 15 * time.Minute
	}
	if o.MaxRows <= 0 {
		o.MaxRows = 4096
	}
	if o.RateBucket <= 0 {
		o.RateBucket = time.Second
	}
	if o.RateSlots <= 0 {
		o.RateSlots = 64
	}
	if o.RateBaseline <= 0 {
		o.RateBaseline = 50
	}
	if o.RateMax <= o.RateBaseline {
		o.RateMax = o.RateBaseline + 200
	}
	if o.BurstTolerance <= 1 {
		o.BurstTolerance = 4
	}
	if o.BurstMax <= o.BurstTolerance {
		o.BurstMax = o.BurstTolerance * 4
	}
	if o.MaxSlots <= 0 {
		o.MaxSlots = 64
	}
	if o.DwellTarget <= 0 {
		o.DwellTarget = time.Second
	}
	if o.DwellZeroMax <= 0 {
		o.DwellZeroMax = 100 * time.Millisecond
	}
	if o.DwellExactTol <= 0 {
		o.DwellExactTol = 50 * time.Millisecond
	}
	if o.FlagThreshold <= 0 {
		o.FlagThreshold = 0.5
	}
	if o.MinEvents <= 0 {
		o.MinEvents = 25
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Score ramp constants below the Options surface: ratio thresholds
// where each detector's score leaves zero / saturates. These encode
// "how much worse than honest-with-faults traffic before we care" and
// are deliberately not per-deployment knobs.
const (
	dwellRatioMin = 0.3 // zero+exact dwell share where score leaves 0
	dwellRatioMax = 0.8
	minDwellPairs = 10 // pairs needed before the dwell histogram means anything

	seqRatioMin = 0.15 // violations per impression; honest fault-drop stays under this
	seqRatioMax = 0.65

	dupRatioMin = 0.25 // duplicate share; HTTP retry storms stay under this
	dupRatioMax = 0.70

	pixelRatioMin = 0.2 // 1×1-size share of sized events
	pixelRatioMax = 0.7
	stackShareMin = 0.4 // top placement's share of in-views
	stackShareMax = 0.9
	minStackViews = 10 // in-views with a slot before concentration means anything
)

// impSrc is one solution's progress on one open impression, plus the
// net-adjusting sequence flags: a violation counted on the row is
// un-counted if the missing lifecycle event arrives late, so the final
// counts depend only on the final event set, not arrival order.
type impSrc struct {
	loaded bool
	viewed bool
	// noLoadCounted: this source's in-view-without-loaded violation is
	// currently counted on the row; a late loaded decrements it.
	noLoadCounted bool
	// noServeCounted: this source's beacons-without-served violation
	// is currently counted; a late served event decrements it.
	noServeCounted bool
	// inAt / outAt hold unpaired cycle timestamps by Seq, exactly as
	// in aggregate; a completed pair folds into the dwell counters and
	// is deleted.
	inAt  map[int]time.Time
	outAt map[int]time.Time
}

// impState is the bounded working state for one (campaign, impression).
type impState struct {
	served    bool
	lastTouch time.Time // arrival clock, drives TTL eviction
	sources   map[beacon.Source]*impSrc
}

// impShard is one lock-striped partition of the open-impression map.
type impShard struct {
	mu   sync.Mutex
	open map[string]*impState
}

// rowKey addresses one campaign × solution score row ("dsp" for
// served events).
type rowKey struct {
	Campaign string
	Source   string
}

// row is one campaign × solution accumulator. Every field is a
// commutative count or a min/max — order-insensitive by construction.
type row struct {
	events      int64 // first-seen events folded in
	dups        int64 // duplicate submissions absorbed by the store
	impressions int64 // distinct impressions this source reported on

	// Rate: fixed ring of event-time bucket counters plus the observed
	// bucket index extent. minB/maxB are valid once events > 0.
	slots      []int64
	minB, maxB int64

	// Dwell histogram mass.
	dwellPairs int64
	dwellZero  int64
	dwellExact int64

	// Sequence violations (net-adjusting, see impSrc).
	seqNoLoad    int64
	seqNoServe   int64
	seqOrphanOut int64

	// Geometry.
	sized     int64 // events carrying an ad size
	pixel     int64 // of those, 1×1 / 0×0
	slotViews map[string]int64
	slotOther int64 // in-views on placements beyond the MaxSlots cap

	lastTouch time.Time // arrival clock, drives MaxRows pressure eviction
}

// rowShard is one lock-striped partition of the score-row table; a
// campaign's rows all live in one shard, so multi-row adjustments
// (late served un-counting every source's violation) are atomic.
type rowShard struct {
	mu   sync.Mutex
	rows map[rowKey]*row
}

// Detector is the streaming scorer. All methods are safe for
// concurrent use. Wire Observe via beacon.Store.AddObserver and
// ObserveDup via AddDupObserver so it sees exactly the store's
// first-seen / duplicate partition of valid submissions.
type Detector struct {
	opts  Options
	imps  []impShard
	camps []rowShard
	mask  uint32

	updates    atomic.Int64 // first-seen events folded in
	dupEvents  atomic.Int64 // duplicate submissions folded in
	openCount  atomic.Int64 // open impression working states
	rowCount   atomic.Int64 // live score rows
	evicted    atomic.Int64 // impression states dropped (TTL + pressure)
	pressureEv atomic.Int64 // the MaxOpen subset
	rowEvicted atomic.Int64 // score rows dropped by the MaxRows cap
}

// New returns an empty detector.
func New(opts Options) *Detector {
	opts = opts.withDefaults()
	size := 1
	for size < opts.Shards {
		size <<= 1
	}
	d := &Detector{
		opts:  opts,
		imps:  make([]impShard, size),
		camps: make([]rowShard, size),
		mask:  uint32(size - 1),
	}
	for i := range d.imps {
		d.imps[i].open = make(map[string]*impState)
	}
	for i := range d.camps {
		d.camps[i].rows = make(map[rowKey]*row)
	}
	return d
}

// fnv1a matches the beacon store's shard hash.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// sourceLabel maps an event source to its row label.
func sourceLabel(s beacon.Source) string {
	if s == "" {
		return SourceDSP
	}
	return string(s)
}

// bucketIndex is the event-time rate bucket an event falls in.
func (o Options) bucketIndex(at time.Time) int64 {
	return at.UnixNano() / int64(o.RateBucket)
}

// isPixelSize reports whether an ad size is degenerate inventory —
// the classic 1×1 (or 0×0) tracking-pixel stuffing signature.
func isPixelSize(size string) bool {
	return size == "1x1" || size == "0x0" || size == "1×1"
}

// Observe folds one first-seen event into the score rows. Install it
// as a beacon.Store observer: the caller guarantees the event is not
// a duplicate and that events of one impression arrive serialized.
func (d *Detector) Observe(e beacon.Event) {
	if e.Validate() != nil {
		return
	}
	now := d.opts.Now()
	impKey := e.CampaignID + "|" + e.ImpressionID
	sh := &d.imps[fnv1a(impKey)&d.mask]

	sh.mu.Lock()
	st, ok := sh.open[impKey]
	created := !ok
	if created {
		st = &impState{sources: make(map[beacon.Source]*impSrc)}
		sh.open[impKey] = st
	}
	st.lastTouch = now

	// All row updates for this event happen under the campaign shard
	// lock (nested imp→row lock order, always — matching aggregate).
	cs := &d.camps[fnv1a(e.CampaignID)&d.mask]
	cs.mu.Lock()
	r := d.rowLocked(cs, rowKey{e.CampaignID, sourceLabel(e.Source)}, now)
	r.lastTouch = now
	r.events++
	r.observeRate(d.opts.bucketIndex(e.At), r.events == 1)
	if e.Meta.AdSize != "" {
		r.sized++
		if isPixelSize(e.Meta.AdSize) {
			r.pixel++
		}
	}

	switch e.Type {
	case beacon.EventServed:
		if !st.served {
			st.served = true
			r.impressions++
			// The served event arrived (possibly late): un-count every
			// solution's beacons-without-served violation. Eviction
			// freezes, it never un-counts — so a row the MaxRows cap
			// already dropped is left absent, not recreated and driven
			// negative; the clamp guards the same invariant if the row
			// was evicted and later recreated by fresh traffic.
			for s, ss := range st.sources {
				if ss.noServeCounted {
					ss.noServeCounted = false
					if rr := cs.rows[rowKey{e.CampaignID, sourceLabel(s)}]; rr != nil && rr.seqNoServe > 0 {
						rr.seqNoServe--
					}
				}
			}
		}
	default:
		ss := st.sources[e.Source]
		if ss == nil {
			ss = &impSrc{}
			st.sources[e.Source] = ss
			r.impressions++
			if !st.served {
				ss.noServeCounted = true
				r.seqNoServe++
			}
		}
		switch e.Type {
		case beacon.EventLoaded:
			if !ss.loaded {
				ss.loaded = true
				if ss.noLoadCounted {
					ss.noLoadCounted = false
					if r.seqNoLoad > 0 { // clamp: the counted row may have been evicted and recreated
						r.seqNoLoad--
					}
				}
			}
		case beacon.EventInView:
			if !ss.viewed {
				ss.viewed = true
				if !ss.loaded {
					ss.noLoadCounted = true
					r.seqNoLoad++
				}
			}
			if e.Meta.Slot != "" {
				r.addSlotView(e.Meta.Slot, d.opts.MaxSlots)
			}
			if ss.inAt == nil {
				ss.inAt = make(map[int]time.Time)
			}
			if _, dup := ss.inAt[e.Seq]; !dup {
				if out, ok := ss.outAt[e.Seq]; ok {
					delete(ss.outAt, e.Seq)
					if r.seqOrphanOut > 0 { // clamp: the counted row may have been evicted and recreated
						r.seqOrphanOut--
					}
					r.observeDwell(dwellOf(e.At, out), d.opts)
				} else {
					ss.inAt[e.Seq] = e.At
				}
			}
		case beacon.EventOutOfView:
			if in, ok := ss.inAt[e.Seq]; ok {
				delete(ss.inAt, e.Seq)
				r.observeDwell(dwellOf(in, e.At), d.opts)
			} else {
				if ss.outAt == nil {
					ss.outAt = make(map[int]time.Time)
				}
				if _, dup := ss.outAt[e.Seq]; !dup {
					ss.outAt[e.Seq] = e.At
					r.seqOrphanOut++
				}
			}
		}
	}
	cs.mu.Unlock()

	if created {
		d.openCount.Add(1)
		if d.opts.MaxOpen > 0 && d.openCount.Load() > int64(d.opts.MaxOpen) {
			d.evictColdestLocked(sh, impKey)
		}
	}
	sh.mu.Unlock()
	d.updates.Add(1)
}

// ObserveDup folds one duplicate submission into the flood counters.
// Install it via beacon.Store.AddDupObserver — duplicates are the one
// signal idempotent ingest hides from every counter downstream, and
// replayed captured beacons are nothing but duplicates.
func (d *Detector) ObserveDup(e beacon.Event) {
	if e.Validate() != nil {
		return
	}
	now := d.opts.Now()
	cs := &d.camps[fnv1a(e.CampaignID)&d.mask]
	cs.mu.Lock()
	r := d.rowLocked(cs, rowKey{e.CampaignID, sourceLabel(e.Source)}, now)
	r.lastTouch = now
	r.dups++
	cs.mu.Unlock()
	d.dupEvents.Add(1)
}

// rowLocked returns (creating if needed) a score row; caller holds
// cs.mu. Creation over the MaxRows cap evicts the coldest row in the
// same shard, sparing the new key.
func (d *Detector) rowLocked(cs *rowShard, k rowKey, now time.Time) *row {
	r := cs.rows[k]
	if r != nil {
		return r
	}
	r = &row{slots: make([]int64, d.opts.RateSlots)}
	cs.rows[k] = r
	r.lastTouch = now
	if d.rowCount.Add(1) > int64(d.opts.MaxRows) {
		var coldest rowKey
		var coldestAt time.Time
		found := false
		for rk, rr := range cs.rows {
			if rk == k {
				continue
			}
			if !found || rr.lastTouch.Before(coldestAt) {
				coldest, coldestAt, found = rk, rr.lastTouch, true
			}
		}
		if found {
			delete(cs.rows, coldest)
			d.rowCount.Add(-1)
			d.rowEvicted.Add(1)
		}
	}
	return r
}

// observeRate folds an event-time bucket index into the ring.
func (r *row) observeRate(b int64, first bool) {
	n := int64(len(r.slots))
	idx := b % n
	if idx < 0 {
		idx += n
	}
	r.slots[idx]++
	if first {
		r.minB, r.maxB = b, b
		return
	}
	if b < r.minB {
		r.minB = b
	}
	if b > r.maxB {
		r.maxB = b
	}
}

// observeDwell classifies one completed in-view/out-of-view pair.
func (r *row) observeDwell(dw time.Duration, o Options) {
	r.dwellPairs++
	if dw <= o.DwellZeroMax {
		r.dwellZero++
		return
	}
	diff := dw - o.DwellTarget
	if diff < 0 {
		diff = -diff
	}
	if diff <= o.DwellExactTol {
		r.dwellExact++
	}
}

// addSlotView counts an in-view against its placement, folding
// overflow placements into the "other" bucket once the map is full.
// Under the cap the fold is order-insensitive; over it, which slots
// are named and which are "other" depends on first-arrival order —
// acceptable because the concentration *ratio* the score uses barely
// moves, and honest inventory sits far below the cap anyway.
func (r *row) addSlotView(slot string, maxSlots int) {
	if r.slotViews == nil {
		r.slotViews = make(map[string]int64)
	}
	if _, ok := r.slotViews[slot]; !ok && len(r.slotViews) >= maxSlots {
		r.slotOther++
		return
	}
	r.slotViews[slot]++
}

// dwellOf clamps a cycle span at zero, as in aggregate.
func dwellOf(in, out time.Time) time.Duration {
	d := out.Sub(in)
	if d < 0 {
		return 0
	}
	return d
}

// evictColdestLocked drops the least-recently-touched impression in
// sh, sparing keep. Caller holds sh.mu. Identical semantics to
// aggregate's pressure eviction: per-shard approximate cap, frozen
// row totals.
func (d *Detector) evictColdestLocked(sh *impShard, keep string) {
	var coldest string
	var coldestAt time.Time
	for k, st := range sh.open {
		if k == keep {
			continue
		}
		if coldest == "" || st.lastTouch.Before(coldestAt) {
			coldest, coldestAt = k, st.lastTouch
		}
	}
	if coldest == "" {
		return
	}
	delete(sh.open, coldest)
	d.openCount.Add(-1)
	d.evicted.Add(1)
	d.pressureEv.Add(1)
}

// Sweep drops the working state of every impression idle for at least
// the TTL as of now, returning how many were evicted. Row counters
// keep their totals.
func (d *Detector) Sweep(now time.Time) int {
	if d.opts.TTL < 0 {
		return 0
	}
	evicted := 0
	for i := range d.imps {
		sh := &d.imps[i]
		sh.mu.Lock()
		for k, st := range sh.open {
			if now.Sub(st.lastTouch) >= d.opts.TTL {
				delete(sh.open, k)
				evicted++
			}
		}
		sh.mu.Unlock()
	}
	d.evicted.Add(int64(evicted))
	d.openCount.Add(-int64(evicted))
	return evicted
}

// OpenImpressions returns how many impressions hold working state.
func (d *Detector) OpenImpressions() int {
	n := 0
	for i := range d.imps {
		sh := &d.imps[i]
		sh.mu.Lock()
		n += len(sh.open)
		sh.mu.Unlock()
	}
	return n
}

// Rows returns how many score rows are live.
func (d *Detector) Rows() int { return int(d.rowCount.Load()) }

// Updates returns how many first-seen events have been folded in.
func (d *Detector) Updates() int64 { return d.updates.Load() }

// DupEvents returns how many duplicate submissions have been folded in.
func (d *Detector) DupEvents() int64 { return d.dupEvents.Load() }

// Evicted returns dropped impression working states (TTL + pressure).
func (d *Detector) Evicted() int64 { return d.evicted.Load() }

// RegisterMetrics exports the detection layer on a metrics registry.
func (d *Detector) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("qtag_detect_updates_total", "First-seen events folded into the fraud detectors.", d.updates.Load)
	r.CounterFunc("qtag_detect_dup_events_total", "Duplicate submissions folded into the flood detector.", d.dupEvents.Load)
	r.CounterFunc("qtag_detect_evicted_total", "Impression working states dropped by TTL/pressure eviction.", d.evicted.Load)
	r.CounterFunc("qtag_detect_row_evicted_total", "Score rows dropped by the MaxRows working-set cap.", d.rowEvicted.Load)
	r.GaugeFunc("qtag_detect_open_impressions", "Impressions currently holding detection working state.",
		func() float64 { return float64(d.OpenImpressions()) })
	r.GaugeFunc("qtag_detect_rows", "Live campaign × solution score rows.",
		func() float64 { return float64(d.rowCount.Load()) })
	r.GaugeFunc("qtag_detect_flagged_campaigns", "Campaigns with at least one row at or over the flag threshold.",
		func() float64 { return float64(d.FlaggedCampaigns()) })
}

// Equivalence property tests: the streaming detector must equal a
// batch Recompute over the raw submission log — for any arrival
// order, any interleaving across goroutines, any amount of duplicate
// delivery, and across a crash/WAL-replay boundary. Scores are
// derived purely from commutative counters at Snapshot time, so the
// property follows from the counters', and this suite pins it down.
package detect_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"qtag/internal/beacon"
	. "qtag/internal/detect"
	"qtag/internal/simrand"
	"qtag/internal/wal"
)

// detectStream draws n submissions with deliberate key collisions
// (duplicates), adversarial-looking metadata, and event-time
// timestamps derived from the key — so duplicate entries are
// byte-identical, the precondition for order independence.
func detectStream(seed uint64, n int) []beacon.Event {
	rng := simrand.New(seed).Fork("detect-equiv-stream")
	types := []beacon.EventType{beacon.EventServed, beacon.EventLoaded, beacon.EventInView, beacon.EventOutOfView}
	sources := []beacon.Source{beacon.SourceQTag, beacon.SourceCommercial}
	sizes := []string{"300x250", "1x1", "728x90", ""}
	out := make([]beacon.Event, 0, n)
	for i := 0; i < n; i++ {
		ti := rng.Intn(len(types))
		typ := types[ti]
		imp := rng.Intn(n/4 + 1)
		at := time.Unix(1700000000+int64(imp%300), int64(imp%7)*int64(time.Millisecond)*137).UTC()
		e := beacon.Event{
			ImpressionID: fmt.Sprintf("imp-%d", imp),
			CampaignID:   fmt.Sprintf("camp-%d", imp%5),
			Type:         typ,
			At:           at,
			Seq:          imp % 2,
			Meta: beacon.Meta{
				AdSize: sizes[imp%len(sizes)],
				Slot:   fmt.Sprintf("slot-%d", imp%3),
			},
		}
		if typ != beacon.EventServed {
			e.Source = sources[imp%len(sources)]
		}
		out = append(out, e)
	}
	return out
}

func equivOpts(shards int) Options {
	return Options{Shards: shards, TTL: -1, Now: func() time.Time { return t0 }}
}

// feed pushes every submission through a fresh store + detector on
// both hooks and returns the detector.
func feed(subs []beacon.Event, opts Options) *Detector {
	det := New(opts)
	store := beacon.NewStore()
	store.AddObserver(det.Observe)
	store.AddDupObserver(det.ObserveDup)
	for _, e := range subs {
		store.Submit(e)
	}
	return det
}

// TestDetectOrderInsensitive: the same submission multiset in forward,
// reverse, and shuffled order produces DeepEqual snapshots, all equal
// to the batch oracle.
func TestDetectOrderInsensitive(t *testing.T) {
	for _, seed := range []uint64{1, 42, 0xbeef} {
		stream := detectStream(seed, 1500)
		for _, shards := range []int{1, 4, 16} {
			opts := equivOpts(shards)
			want := Recompute(stream, opts).Snapshot()

			reversed := make([]beacon.Event, len(stream))
			for i, e := range stream {
				reversed[len(stream)-1-i] = e
			}
			shuffled := append([]beacon.Event(nil), stream...)
			rng := simrand.New(seed).Fork("shuffle")
			for i := len(shuffled) - 1; i > 0; i-- {
				j := rng.Intn(i + 1)
				shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
			}
			for label, order := range map[string][]beacon.Event{"forward": stream, "reverse": reversed, "shuffled": shuffled} {
				got := feed(order, opts).Snapshot()
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed=%d shards=%d %s: snapshot diverged\n got: %+v\nwant: %+v", seed, shards, label, got, want)
				}
			}
		}
	}
}

// TestDetectConcurrentEquivalence: the stream interleaved across
// goroutines — plus a full duplicate pass racing it — converges to
// the sequential result. The dup pass adds len(stream) duplicate
// submissions on top of the stream's own collisions, and both runs
// must agree on every dup-flood score. Run under -race this also
// proves the two-hook wiring is data-race free.
func TestDetectConcurrentEquivalence(t *testing.T) {
	stream := detectStream(77, 2000)
	sequential := append(append([]beacon.Event(nil), stream...), stream...)
	for _, shards := range []int{1, 8} {
		opts := equivOpts(shards)
		want := feed(sequential, opts).Snapshot()

		det := New(opts)
		store := beacon.NewStore()
		store.AddObserver(det.Observe)
		store.AddDupObserver(det.ObserveDup)
		const workers = 8
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(stream); i += workers {
					store.Submit(stream[i])
				}
				if w == 0 {
					for _, e := range stream {
						store.Submit(e)
					}
				}
			}(w)
		}
		wg.Wait()
		if got := det.Snapshot(); !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: concurrent snapshot diverged\n got: %+v\nwant: %+v", shards, got, want)
		}
	}
}

// TestDetectCrashRecovery: a detector rebuilt by WAL replay on boot
// (hooks attached before OpenDurable, exactly as qtag-server wires
// it) equals the pre-crash detector — including duplicate-flood
// state, because the WAL journals every accepted submission, not just
// first-seen ones.
func TestDetectCrashRecovery(t *testing.T) {
	stream := detectStream(0xfeed, 1200)
	// Interleave duplicates mid-stream so the flood counters have
	// state on both sides of the crash point.
	subs := make([]beacon.Event, 0, len(stream)*2)
	for i, e := range stream {
		subs = append(subs, e)
		if i%3 == 0 {
			subs = append(subs, stream[i/2])
		}
	}
	dir := t.TempDir()
	opts := equivOpts(8)

	d1 := New(opts)
	store1 := beacon.NewStore()
	store1.AddObserver(d1.Observe)
	store1.AddDupObserver(d1.ObserveDup)
	wj, _, err := beacon.OpenDurable(wal.Options{Dir: dir, Fsync: wal.FsyncAlways}, store1)
	if err != nil {
		t.Fatalf("open durable: %v", err)
	}
	sink := beacon.Tee(store1, wj)
	for _, e := range subs {
		if err := sink.Submit(e); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	preCrash := d1.Snapshot()
	if d1.DupEvents() == 0 {
		t.Fatal("stream produced no duplicates; the test is vacuous")
	}
	// Crash: no Close. FsyncAlways made every record durable.

	d2 := New(opts)
	store2 := beacon.NewStore()
	store2.AddObserver(d2.Observe)
	store2.AddDupObserver(d2.ObserveDup)
	wj2, rec, err := beacon.OpenDurable(wal.Options{Dir: dir, Fsync: wal.FsyncAlways}, store2)
	if err != nil {
		t.Fatalf("reopen durable: %v", err)
	}
	defer wj2.Close()
	if rec.Replayed == 0 {
		t.Fatal("recovery replayed nothing")
	}
	if d2.DupEvents() != d1.DupEvents() {
		t.Fatalf("replayed dup events = %d, want %d", d2.DupEvents(), d1.DupEvents())
	}
	if got := d2.Snapshot(); !reflect.DeepEqual(got, preCrash) {
		t.Fatalf("rebuilt detector != pre-crash detector\n got: %+v\nwant: %+v", got, preCrash)
	}
}

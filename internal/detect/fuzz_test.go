package detect_test

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"qtag/internal/beacon"
	. "qtag/internal/detect"
)

// FuzzDetectObserve fuzzes the detector with arbitrary event
// sequences — one JSON event per input line, each submitted twice so
// the duplicate hook gets coverage too. Invariants for ANY input:
//
//   - neither Observe, ObserveDup, nor Snapshot panics;
//   - every contribution and composite score stays in [0,1];
//   - memory stays bounded: open impression states respect MaxOpen
//     and score rows respect MaxRows (both per-shard approximate, so
//     the bound allows one straggler per shard).
//
// Seed corpus lives under testdata/fuzz/FuzzDetectObserve.
func FuzzDetectObserve(f *testing.F) {
	f.Add(`{"impression_id":"a","campaign_id":"c","type":"served"}`)
	f.Add(`{"impression_id":"a","campaign_id":"c","source":"qtag","type":"in-view","at":"2023-11-14T22:13:20Z","meta":{"slot":"s1","ad_size":"1x1"}}` + "\n" +
		`{"impression_id":"a","campaign_id":"c","source":"qtag","type":"out-of-view","at":"2023-11-14T22:13:21Z"}`)
	f.Add(`{"impression_id":"a","campaign_id":"c","source":"qtag","type":"out-of-view","seq":-3,"at":"0001-01-01T00:00:00Z"}`)
	f.Add(`not json` + "\n" + `{"impression_id":"","campaign_id":"","type":"served"}`)
	f.Add(strings.Repeat(`{"impression_id":"x","campaign_id":"flood","source":"qtag","type":"loaded"}`+"\n", 40))
	f.Fuzz(func(t *testing.T, input string) {
		const maxOpen, maxRows, shards = 64, 64, 16
		det := New(Options{
			Shards:  shards,
			TTL:     -1,
			MaxOpen: maxOpen,
			MaxRows: maxRows,
			Now:     func() time.Time { return time.Unix(1700000000, 0) },
		})
		store := beacon.NewStore()
		store.AddObserver(det.Observe)
		store.AddDupObserver(det.ObserveDup)

		for _, line := range strings.Split(input, "\n") {
			var e beacon.Event
			if json.Unmarshal([]byte(line), &e) != nil {
				continue
			}
			store.Submit(e) // a panic here fails the fuzz run
			store.Submit(e) // duplicate path
		}

		snap := det.Snapshot()
		for _, r := range snap.Rows {
			if r.Score < 0 || r.Score > 1 {
				t.Fatalf("composite score %v out of [0,1]: %+v", r.Score, r)
			}
			for k, v := range r.Contribs {
				if v < 0 || v > 1 {
					t.Fatalf("contribution %s=%v out of [0,1]: %+v", k, v, r)
				}
			}
		}
		if open := det.OpenImpressions(); open > maxOpen+shards {
			t.Fatalf("open impressions %d exceeds cap %d", open, maxOpen)
		}
		if rows := det.Rows(); rows > maxRows+shards {
			t.Fatalf("score rows %d exceeds cap %d", rows, maxRows)
		}
	})
}

package detect_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"qtag/internal/beacon"
	. "qtag/internal/detect"
	"qtag/internal/wal"
)

// TestTornWALTailStillScores is the qtag-replay -detect durability
// contract: a journal whose tail was torn by a crash mid-write replays
// with the damage reported, and the fraud scores come out intact for
// everything before the tear — a flood that filled the journal is
// still flagged even though its final beacons are unreadable.
func TestTornWALTailStillScores(t *testing.T) {
	dir := t.TempDir()
	store := beacon.NewStore()
	wj, _, err := beacon.OpenDurable(wal.Options{Dir: dir, Fsync: wal.FsyncAlways}, store)
	if err != nil {
		t.Fatal(err)
	}
	sink := beacon.Tee(store, wj)
	t0 := time.Unix(1700000000, 0).UTC()
	// A duplicate flood: 20 impressions, every loaded beacon submitted
	// 5×. All accepted submissions — duplicates included — hit the WAL.
	for i := 0; i < 20; i++ {
		ev := beacon.Event{
			CampaignID:   "camp-flood",
			ImpressionID: fmt.Sprintf("imp-%03d", i),
			Source:       beacon.SourceQTag,
			Type:         beacon.EventLoaded,
			At:           t0.Add(time.Duration(i) * 50 * time.Millisecond),
		}
		for pass := 0; pass < 5; pass++ {
			if err := sink.Submit(ev); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := wj.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: chop bytes off the final segment mid-record, the
	// signature of a crash during the last flush.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	data, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	// The qtag-replay -detect wiring: fresh store, both detection hooks,
	// ReplayWALDir.
	replay := beacon.NewStore()
	det := New(Options{TTL: -1})
	replay.AddObserver(det.Observe)
	replay.AddDupObserver(det.ObserveDup)
	rec, err := beacon.ReplayWALDir(dir, replay)
	if err != nil {
		t.Fatalf("a torn tail must degrade, not fail: %v", err)
	}
	if !rec.TornTail {
		t.Fatalf("tear not reported: %+v", rec)
	}
	// Exactly one submission is lost — the one spanning the tear.
	if rec.Replayed != 99 {
		t.Fatalf("replayed %d of 100 submissions, want 99", rec.Replayed)
	}

	snap := det.Snapshot()
	if len(snap.Flagged) != 1 || snap.Flagged[0] != "camp-flood" {
		t.Fatalf("flood not flagged after torn-tail replay: %+v", snap)
	}
	row := snap.Rows[0]
	if row.Events+row.Dups != 99 {
		t.Fatalf("scored %d submissions, want 99: %+v", row.Events+row.Dups, row)
	}
	if row.Contribs[DetectorDuplicate] != 1 {
		t.Fatalf("duplicate contribution = %v, want 1", row.Contribs[DetectorDuplicate])
	}
}

package analytics

import (
	"encoding/json"
	"net/http"
	"time"

	"qtag/internal/beacon"
)

// Handler exposes the analytics queries over HTTP, for mounting next to
// the beacon collection API (see cmd/qtag-server):
//
//	GET /v1/breakdown?dim={exchange|country|os|site-type|ad-size}
//	GET /v1/timeseries?width=1h
//
// Responses are JSON arrays of SliceRates / Bucket.
func Handler(store *beacon.Store) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/breakdown", func(w http.ResponseWriter, r *http.Request) {
		dim, ok := parseDimension(r.URL.Query().Get("dim"))
		if !ok {
			httpError(w, http.StatusBadRequest, "unknown dim; want exchange|country|os|site-type|ad-size")
			return
		}
		writeJSON(w, BreakdownBy(store, dim))
	})
	mux.HandleFunc("GET /v1/timeseries", func(w http.ResponseWriter, r *http.Request) {
		width := time.Hour
		if raw := r.URL.Query().Get("width"); raw != "" {
			d, err := time.ParseDuration(raw)
			if err != nil || d <= 0 {
				httpError(w, http.StatusBadRequest, "bad width: want a positive Go duration like 1h")
				return
			}
			width = d
		}
		writeJSON(w, TimeSeries(store, width))
	})
	return mux
}

func parseDimension(s string) (Dimension, bool) {
	switch s {
	case "exchange":
		return ByExchange, true
	case "country":
		return ByCountry, true
	case "os":
		return ByOS, true
	case "site-type":
		return BySiteType, true
	case "ad-size":
		return ByAdSize, true
	default:
		return 0, false
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

package analytics

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"qtag/internal/beacon"
	"qtag/internal/campaign"
)

func analyticsServer(t *testing.T) (*httptest.Server, *beacon.Store) {
	t.Helper()
	res := campaign.New(campaign.Config{
		Seed: 41, Campaigns: 4, ImpressionsPerCampaign: 50, BothCampaigns: 2,
	}).Run()
	base := beacon.NewServer(res.Store)
	base.Mount("GET /v1/breakdown", Handler(res.Store))
	base.Mount("GET /v1/timeseries", Handler(res.Store))
	return httptest.NewServer(base), res.Store
}

func TestHTTPBreakdown(t *testing.T) {
	srv, _ := analyticsServer(t)
	defer srv.Close()
	for _, dim := range []string{"exchange", "country", "os", "site-type", "ad-size"} {
		resp, err := http.Get(srv.URL + "/v1/breakdown?dim=" + dim)
		if err != nil {
			t.Fatal(err)
		}
		var slices []SliceRates
		if err := json.NewDecoder(resp.Body).Decode(&slices); err != nil {
			t.Fatalf("%s: decode: %v", dim, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status = %d", dim, resp.StatusCode)
		}
		if len(slices) == 0 {
			t.Errorf("%s: no slices", dim)
		}
		for _, s := range slices {
			if s.Key == "" || s.Served == 0 {
				t.Errorf("%s: empty slice %+v", dim, s)
			}
		}
	}
	// Unknown dimension 400s.
	resp, err := http.Get(srv.URL + "/v1/breakdown?dim=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus dim status = %d", resp.StatusCode)
	}
}

func TestHTTPTimeSeries(t *testing.T) {
	srv, _ := analyticsServer(t)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/timeseries?width=1h")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buckets []Bucket
	if err := json.NewDecoder(resp.Body).Decode(&buckets); err != nil {
		t.Fatal(err)
	}
	// All simulated sessions start at the simclock epoch, so there is at
	// least one bucket, anchored near it.
	if len(buckets) == 0 {
		t.Fatal("no buckets")
	}
	if buckets[0].Served == 0 {
		t.Error("first bucket unpopulated")
	}
	if buckets[0].Start.After(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)) {
		t.Errorf("bucket start implausible: %v", buckets[0].Start)
	}

	for _, bad := range []string{"width=0s", "width=-1h", "width=nonsense"} {
		resp, err := http.Get(srv.URL + "/v1/timeseries?" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d", bad, resp.StatusCode)
		}
	}
}

func TestHTTPCoexistsWithCollectionAPI(t *testing.T) {
	srv, store := analyticsServer(t)
	defer srv.Close()
	// The built-in endpoints still work after mounting.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats beacon.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Served != store.Served("") {
		t.Errorf("stats served = %d, store %d", stats.Served, store.Served(""))
	}
}

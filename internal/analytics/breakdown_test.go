package analytics

import (
	"testing"
	"time"

	"qtag/internal/beacon"
	"qtag/internal/campaign"
)

func TestDimensionStrings(t *testing.T) {
	names := map[Dimension]string{
		ByExchange: "exchange", ByCountry: "country", ByOS: "os",
		BySiteType: "site-type", ByAdSize: "ad-size",
	}
	for d, want := range names {
		if d.String() != want {
			t.Errorf("%d.String() = %q", int(d), d.String())
		}
	}
	if Dimension(99).String() != "Dimension(99)" {
		t.Error("unknown dimension string wrong")
	}
}

func TestBreakdownByExchange(t *testing.T) {
	res := campaign.New(campaign.Config{
		Seed: 31, Campaigns: 6, ImpressionsPerCampaign: 80, BothCampaigns: 6,
	}).Run()
	slices := BreakdownBy(res.Store, ByExchange)
	if len(slices) != len(campaign.Exchanges) {
		t.Fatalf("exchanges = %d, want %d", len(slices), len(campaign.Exchanges))
	}
	var total int
	for i, s := range slices {
		if i > 0 && slices[i-1].Key >= s.Key {
			t.Fatal("slices not sorted")
		}
		if s.Served == 0 {
			t.Errorf("exchange %s unpopulated", s.Key)
		}
		if s.QTag <= s.Commercial {
			t.Errorf("exchange %s: qtag %.3f vs commercial %.3f", s.Key, s.QTag, s.Commercial)
		}
		total += s.Served
	}
	var served int
	for _, c := range res.Campaigns {
		served += c.Served
	}
	if total != served {
		t.Errorf("breakdown covers %d impressions, sim served %d", total, served)
	}
}

func TestBreakdownByCountryAndAdSize(t *testing.T) {
	res := campaign.New(campaign.Config{
		Seed: 33, Campaigns: 7, ImpressionsPerCampaign: 60, BothCampaigns: 0,
	}).Run()
	countries := BreakdownBy(res.Store, ByCountry)
	if len(countries) != 7 { // 7 campaigns → 7 distinct countries (round robin)
		t.Errorf("countries = %d", len(countries))
	}
	sizes := BreakdownBy(res.Store, ByAdSize)
	if len(sizes) != 2 {
		t.Fatalf("ad sizes = %d, want 2 (300x250, 320x50)", len(sizes))
	}
	for _, s := range sizes {
		if s.Key != "300x250" && s.Key != "320x50" {
			t.Errorf("unexpected size key %q", s.Key)
		}
		if s.QTag < 0.85 {
			t.Errorf("size %s qtag measured = %.3f", s.Key, s.QTag)
		}
	}
}

func TestBreakdownEmptyStore(t *testing.T) {
	if got := BreakdownBy(beacon.NewStore(), ByOS); len(got) != 0 {
		t.Errorf("empty store breakdown = %v", got)
	}
}

func TestTimeSeries(t *testing.T) {
	store := beacon.NewStore()
	base := time.Date(2019, 12, 9, 10, 0, 0, 0, time.UTC)
	submit := func(imp string, typ beacon.EventType, src beacon.Source, at time.Time) {
		t.Helper()
		err := store.Submit(beacon.Event{
			ImpressionID: imp, CampaignID: "c", Type: typ, Source: src, At: at,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Hour 1: 2 served, 2 measured, 1 in-view. Hour 2: 1 served, 0 measured.
	submit("a", beacon.EventServed, "", base)
	submit("a", beacon.EventLoaded, beacon.SourceQTag, base.Add(time.Second))
	submit("a", beacon.EventInView, beacon.SourceQTag, base.Add(2*time.Second))
	submit("b", beacon.EventServed, "", base.Add(10*time.Minute))
	submit("b", beacon.EventLoaded, beacon.SourceQTag, base.Add(10*time.Minute))
	submit("z", beacon.EventServed, "", base.Add(90*time.Minute))

	buckets := TimeSeries(store, time.Hour)
	if len(buckets) != 2 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	h1, h2 := buckets[0], buckets[1]
	if h1.Served != 2 || h1.QTag != 1.0 || h1.InView != 0.5 {
		t.Errorf("hour 1 = %+v", h1)
	}
	if h2.Served != 1 || h2.QTag != 0 {
		t.Errorf("hour 2 = %+v", h2)
	}
	if !h2.Start.After(h1.Start) {
		t.Error("buckets not ordered")
	}
}

func TestTimeSeriesIgnoresZeroTimestamps(t *testing.T) {
	store := beacon.NewStore()
	store.Submit(beacon.Event{ImpressionID: "a", CampaignID: "c", Type: beacon.EventServed})
	if got := TimeSeries(store, time.Hour); len(got) != 0 {
		t.Errorf("zero-timestamp events must be ignored: %v", got)
	}
}

func TestTimeSeriesPanicsOnZeroWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	TimeSeries(beacon.NewStore(), 0)
}

package analytics

import (
	"fmt"
	"sort"
	"time"

	"qtag/internal/beacon"
)

// Dimension selects an attribute to break measurement rates down by.
type Dimension int

// Breakdown dimensions.
const (
	// ByExchange groups by the ad exchange that carried the impression
	// (the §5 dataset spans eight exchanges).
	ByExchange Dimension = iota
	// ByCountry groups by the campaign's target country.
	ByCountry
	// ByOS groups by operating system.
	ByOS
	// BySiteType groups by browser vs in-app webview.
	BySiteType
	// ByAdSize groups by creative size (300×250 vs 320×50 in §5).
	ByAdSize
)

// String implements fmt.Stringer.
func (d Dimension) String() string {
	switch d {
	case ByExchange:
		return "exchange"
	case ByCountry:
		return "country"
	case ByOS:
		return "os"
	case BySiteType:
		return "site-type"
	case ByAdSize:
		return "ad-size"
	default:
		return fmt.Sprintf("Dimension(%d)", int(d))
	}
}

func (d Dimension) keyOf(k beacon.CounterKey) (string, bool) {
	switch d {
	case ByExchange:
		return k.Exchange, k.Exchange != ""
	case ByCountry:
		return k.Country, k.Country != ""
	case ByOS:
		return k.OS, k.OS != ""
	case BySiteType:
		return k.SiteType, k.SiteType != ""
	default:
		return "", false
	}
}

func (d Dimension) keyOfEvent(e beacon.Event) (string, bool) {
	switch d {
	case ByExchange:
		return e.Meta.Exchange, e.Meta.Exchange != ""
	case ByCountry:
		return e.Meta.Country, e.Meta.Country != ""
	case ByOS:
		return e.Meta.OS, e.Meta.OS != ""
	case BySiteType:
		return e.Meta.SiteType, e.Meta.SiteType != ""
	case ByAdSize:
		return e.Meta.AdSize, e.Meta.AdSize != ""
	default:
		return "", false
	}
}

// SliceRates is one group of a dimensional breakdown.
type SliceRates struct {
	Key        string
	Served     int
	QTag       float64 // measured rate
	Commercial float64 // measured rate
	QTagView   float64 // viewability rate of Q-Tag-measured impressions
}

// BreakdownBy computes measured rates grouped by a counter-backed
// dimension (exchange, country, OS or site type), sorted by key. ByAdSize
// is event-backed and must go through TimeSeries/event scans; it returns
// nil here.
func BreakdownBy(store *beacon.Store, dim Dimension) []SliceRates {
	if dim == ByAdSize {
		return breakdownFromEvents(store, dim)
	}
	acc := map[string]*sliceCounts{}
	for k, n := range store.Counters() {
		key, ok := dim.keyOf(k)
		if !ok {
			continue
		}
		c := acc[key]
		if c == nil {
			c = &sliceCounts{}
			acc[key] = c
		}
		switch {
		case k.Type == beacon.EventServed:
			c.served += n
		case k.Type == beacon.EventLoaded && k.Source == beacon.SourceQTag:
			c.qtag += n
		case k.Type == beacon.EventLoaded && k.Source == beacon.SourceCommercial:
			c.comm += n
		case k.Type == beacon.EventInView && k.Source == beacon.SourceQTag:
			c.qview += n
		}
	}
	return finishSlices(acc)
}

func breakdownFromEvents(store *beacon.Store, dim Dimension) []SliceRates {
	acc := map[string]*sliceCounts{}
	for _, e := range store.Events() {
		key, ok := dim.keyOfEvent(e)
		if !ok {
			continue
		}
		c := acc[key]
		if c == nil {
			c = &sliceCounts{}
			acc[key] = c
		}
		switch {
		case e.Type == beacon.EventServed:
			c.served++
		case e.Type == beacon.EventLoaded && e.Source == beacon.SourceQTag:
			c.qtag++
		case e.Type == beacon.EventLoaded && e.Source == beacon.SourceCommercial:
			c.comm++
		case e.Type == beacon.EventInView && e.Source == beacon.SourceQTag:
			c.qview++
		}
	}
	return finishSlices(acc)
}

// sliceCounts accumulates the raw event counts behind one slice.
type sliceCounts struct{ served, qtag, comm, qview int }

func finishSlices(acc map[string]*sliceCounts) []SliceRates {
	out := make([]SliceRates, 0, len(acc))
	for key, c := range acc {
		s := SliceRates{Key: key, Served: c.served}
		if c.served > 0 {
			s.QTag = float64(c.qtag) / float64(c.served)
			s.Commercial = float64(c.comm) / float64(c.served)
		}
		if c.qtag > 0 {
			s.QTagView = float64(c.qview) / float64(c.qtag)
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Bucket is one interval of a measurement-rate time series.
type Bucket struct {
	Start  time.Time
	Served int
	QTag   float64 // measured rate in the bucket
	InView float64 // Q-Tag viewability rate in the bucket
}

// TimeSeries buckets served/measured/in-view events by their timestamps —
// the monitoring view a DSP watches during a live campaign. Events with a
// zero timestamp are ignored. Width must be positive.
func TimeSeries(store *beacon.Store, width time.Duration) []Bucket {
	if width <= 0 {
		panic("analytics: TimeSeries needs a positive bucket width")
	}
	type counts struct{ served, loaded, inview int }
	acc := map[int64]*counts{}
	for _, e := range store.Events() {
		if e.At.IsZero() {
			continue
		}
		slot := e.At.UnixNano() / int64(width)
		c := acc[slot]
		if c == nil {
			c = &counts{}
			acc[slot] = c
		}
		switch {
		case e.Type == beacon.EventServed:
			c.served++
		case e.Type == beacon.EventLoaded && e.Source == beacon.SourceQTag:
			c.loaded++
		case e.Type == beacon.EventInView && e.Source == beacon.SourceQTag:
			c.inview++
		}
	}
	slots := make([]int64, 0, len(acc))
	for s := range acc {
		slots = append(slots, s)
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	out := make([]Bucket, 0, len(slots))
	for _, s := range slots {
		c := acc[s]
		b := Bucket{Start: time.Unix(0, s*int64(width)).UTC(), Served: c.served}
		if c.served > 0 {
			b.QTag = float64(c.loaded) / float64(c.served)
		}
		if c.loaded > 0 {
			b.InView = float64(c.inview) / float64(c.loaded)
		}
		out = append(out, b)
	}
	return out
}

// Package analytics turns raw beacon data and campaign aggregates into
// the paper's evaluation artifacts: the Figure 3 measured-rate and
// viewability-rate comparison (mean ± standard deviation across
// campaigns) and the Table 2 measured-rate slices by site type × OS.
package analytics

import (
	"fmt"
	"sort"

	"qtag/internal/beacon"
	"qtag/internal/campaign"
	"qtag/internal/stats"
)

// SolutionSummary is one bar of Figure 3: the across-campaign mean and
// standard deviation of a solution's rates.
type SolutionSummary struct {
	Source beacon.Source
	// Campaigns is the number of campaigns instrumented with this
	// solution.
	Campaigns int
	// MeanMeasured / StdMeasured summarise the measured rate
	// (loaded / served) across campaigns.
	MeanMeasured float64
	StdMeasured  float64
	// MeanViewability / StdViewability summarise the viewability rate
	// (in-view / measured) across campaigns.
	MeanViewability float64
	StdViewability  float64
}

// String implements fmt.Stringer.
func (s SolutionSummary) String() string {
	return fmt.Sprintf("%s: measured %.1f%%±%.1f, viewability %.1f%%±%.1f (%d campaigns)",
		s.Source, s.MeanMeasured*100, s.StdMeasured*100,
		s.MeanViewability*100, s.StdViewability*100, s.Campaigns)
}

// Figure3 computes the paper's Figure 3 from a simulation result: Q-Tag
// rates across every campaign, commercial rates across the campaigns that
// carried both tags.
func Figure3(res *campaign.Result) map[beacon.Source]SolutionSummary {
	var qm, qv, cm, cv []float64
	for _, c := range res.Campaigns {
		if c.Served == 0 {
			continue
		}
		// Q-Tag instruments every campaign.
		qm = append(qm, c.MeasuredRate(beacon.SourceQTag))
		if c.QTagLoaded > 0 {
			qv = append(qv, c.ViewabilityRate(beacon.SourceQTag))
		}
		if c.Spec.Both {
			cm = append(cm, c.MeasuredRate(beacon.SourceCommercial))
			if c.CommercialLoaded > 0 {
				cv = append(cv, c.ViewabilityRate(beacon.SourceCommercial))
			}
		}
	}
	return map[beacon.Source]SolutionSummary{
		beacon.SourceQTag: {
			Source: beacon.SourceQTag, Campaigns: len(qm),
			MeanMeasured: stats.Mean(qm), StdMeasured: stats.StdDev(qm),
			MeanViewability: stats.Mean(qv), StdViewability: stats.StdDev(qv),
		},
		beacon.SourceCommercial: {
			Source: beacon.SourceCommercial, Campaigns: len(cm),
			MeanMeasured: stats.Mean(cm), StdMeasured: stats.StdDev(cm),
			MeanViewability: stats.Mean(cv), StdViewability: stats.StdDev(cv),
		},
	}
}

// Table2Cell is one row of Table 2: measured rates for a site-type × OS
// slice of mobile impressions.
type Table2Cell struct {
	SiteType string
	OS       string
	Served   int
	// QTag and Commercial are the measured rates in this slice.
	QTag       float64
	Commercial float64
}

// String implements fmt.Stringer.
func (c Table2Cell) String() string {
	return fmt.Sprintf("%-8s %-8s qtag %.1f%%  commercial %.1f%% (n=%d)",
		c.SiteType, c.OS, c.QTag*100, c.Commercial*100, c.Served)
}

// Table2 computes the Table 2 slices from the beacon store, restricted to
// the given campaigns (nil/empty = all). The paper computes this table on
// the comparison subset — the campaigns instrumented with *both* tags —
// so pass that subset when only some campaigns carry the commercial tag;
// Table2ForResult does this automatically. Rows follow the paper's order:
// app/Android, app/iOS, browser/Android, browser/iOS.
func Table2(store *beacon.Store, campaignIDs ...string) []Table2Cell {
	include := func(string) bool { return true }
	if len(campaignIDs) > 0 {
		set := make(map[string]bool, len(campaignIDs))
		for _, id := range campaignIDs {
			set[id] = true
		}
		include = func(id string) bool { return set[id] }
	}
	order := [][2]string{
		{"app", "Android"}, {"app", "iOS"},
		{"browser", "Android"}, {"browser", "iOS"},
	}
	cells := make([]Table2Cell, 0, len(order))
	for _, cell := range order {
		site, os := cell[0], cell[1]
		served := store.Count(func(k beacon.CounterKey) bool {
			return k.Type == beacon.EventServed && k.OS == os && k.SiteType == site &&
				include(k.CampaignID)
		})
		c := Table2Cell{SiteType: site, OS: os, Served: served}
		if served > 0 {
			c.QTag = float64(store.Count(func(k beacon.CounterKey) bool {
				return k.Type == beacon.EventLoaded && k.Source == beacon.SourceQTag &&
					k.OS == os && k.SiteType == site && include(k.CampaignID)
			})) / float64(served)
			c.Commercial = float64(store.Count(func(k beacon.CounterKey) bool {
				return k.Type == beacon.EventLoaded && k.Source == beacon.SourceCommercial &&
					k.OS == os && k.SiteType == site && include(k.CampaignID)
			})) / float64(served)
		}
		cells = append(cells, c)
	}
	return cells
}

// Table2ForResult computes Table 2 over the simulation's comparison
// subset (the campaigns carrying both tags), matching the paper's §6
// methodology.
func Table2ForResult(res *campaign.Result) []Table2Cell {
	var both []string
	for _, c := range res.Campaigns {
		if c.Spec.Both {
			both = append(both, c.Spec.ID)
		}
	}
	return Table2(res.Store, both...)
}

// CampaignBreakdown is a per-campaign summary row for reporting.
type CampaignBreakdown struct {
	ID              string
	Served          int
	QTagMeasured    float64
	QTagViewability float64
	Both            bool
	CommMeasured    float64
	CommViewability float64
}

// Breakdown lists per-campaign rates sorted by campaign id.
func Breakdown(res *campaign.Result) []CampaignBreakdown {
	rows := make([]CampaignBreakdown, 0, len(res.Campaigns))
	for _, c := range res.Campaigns {
		rows = append(rows, CampaignBreakdown{
			ID:              c.Spec.ID,
			Served:          c.Served,
			QTagMeasured:    c.MeasuredRate(beacon.SourceQTag),
			QTagViewability: c.ViewabilityRate(beacon.SourceQTag),
			Both:            c.Spec.Both,
			CommMeasured:    c.MeasuredRate(beacon.SourceCommercial),
			CommViewability: c.ViewabilityRate(beacon.SourceCommercial),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	return rows
}

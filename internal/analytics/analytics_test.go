package analytics

import (
	"math"
	"strings"
	"testing"

	"qtag/internal/beacon"
	"qtag/internal/campaign"
)

func runSim(t *testing.T) *campaign.Result {
	t.Helper()
	return campaign.New(campaign.Config{
		Seed: 21, Campaigns: 16, ImpressionsPerCampaign: 150, BothCampaigns: 16,
	}).Run()
}

func TestFigure3Summaries(t *testing.T) {
	res := runSim(t)
	fig := Figure3(res)
	q := fig[beacon.SourceQTag]
	c := fig[beacon.SourceCommercial]
	if q.Campaigns != 16 {
		t.Errorf("qtag campaigns = %d, want 16", q.Campaigns)
	}
	if c.Campaigns != 16 {
		t.Errorf("commercial campaigns = %d, want 16 (the both-tag subset)", c.Campaigns)
	}
	if q.MeanMeasured <= c.MeanMeasured {
		t.Errorf("Q-Tag measured (%.3f) must exceed commercial (%.3f)", q.MeanMeasured, c.MeanMeasured)
	}
	if q.MeanMeasured < 0.88 || q.MeanMeasured > 0.98 {
		t.Errorf("Q-Tag mean measured = %.3f", q.MeanMeasured)
	}
	if math.Abs(q.MeanViewability-c.MeanViewability) > 0.08 {
		t.Errorf("viewability means should be close: %.3f vs %.3f", q.MeanViewability, c.MeanViewability)
	}
	if q.StdMeasured < 0 || q.StdViewability <= 0 {
		t.Error("error bars should be non-degenerate")
	}
	if !strings.Contains(q.String(), "measured") {
		t.Error("summary String wrong")
	}
}

func TestTable2Rows(t *testing.T) {
	res := runSim(t)
	cells := Table2ForResult(res)
	if len(cells) != 4 {
		t.Fatalf("want 4 cells, got %d", len(cells))
	}
	wantOrder := [][2]string{{"app", "Android"}, {"app", "iOS"}, {"browser", "Android"}, {"browser", "iOS"}}
	for i, cell := range cells {
		if cell.SiteType != wantOrder[i][0] || cell.OS != wantOrder[i][1] {
			t.Errorf("row %d = %s/%s, want %s/%s", i, cell.SiteType, cell.OS, wantOrder[i][0], wantOrder[i][1])
		}
		if cell.Served == 0 {
			t.Errorf("row %d unpopulated", i)
		}
		if cell.QTag <= cell.Commercial {
			t.Errorf("row %d: qtag %.3f must beat commercial %.3f", i, cell.QTag, cell.Commercial)
		}
		if cell.String() == "" {
			t.Error("cell String empty")
		}
	}
	// Worst commercial cell is Android app.
	if !(cells[0].Commercial < cells[1].Commercial &&
		cells[0].Commercial < cells[2].Commercial &&
		cells[0].Commercial < cells[3].Commercial) {
		t.Errorf("Android app should be the commercial solution's worst cell: %+v", cells)
	}
}

func TestTable2EmptyStore(t *testing.T) {
	cells := Table2(beacon.NewStore())
	for _, c := range cells {
		if c.Served != 0 || c.QTag != 0 || c.Commercial != 0 {
			t.Errorf("empty store cell = %+v", c)
		}
	}
}

func TestBreakdown(t *testing.T) {
	res := runSim(t)
	rows := Breakdown(res)
	if len(rows) != 16 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].ID >= rows[i].ID {
			t.Fatal("breakdown must be sorted by id")
		}
	}
	both := 0
	for _, r := range rows {
		if r.Served == 0 || r.QTagMeasured == 0 {
			t.Errorf("row %s empty", r.ID)
		}
		if r.Both {
			both++
			if r.CommMeasured == 0 {
				t.Errorf("both-campaign %s lacks commercial data", r.ID)
			}
		} else if r.CommMeasured != 0 {
			t.Errorf("qtag-only campaign %s has commercial data", r.ID)
		}
	}
	if both != 16 {
		t.Errorf("both rows = %d", both)
	}
}

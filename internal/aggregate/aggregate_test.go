package aggregate

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"qtag/internal/beacon"
	"qtag/internal/obs"
)

// fakeClock is a settable arrival clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time { return c.t }

func newTestAgg(clk *fakeClock, ttl time.Duration) *Aggregator {
	return New(Options{Shards: 4, TTL: ttl, Window: time.Minute, MaxWindows: 4, Now: clk.now})
}

func ev(imp, camp string, src beacon.Source, typ beacon.EventType, seq int, format string, at time.Time) beacon.Event {
	return beacon.Event{
		ImpressionID: imp, CampaignID: camp, Source: src, Type: typ, Seq: seq,
		At: at, Meta: beacon.Meta{Format: format},
	}
}

var t0 = time.Unix(1500000000, 0).UTC()

// feed pushes events through a deduplicating store wired to the
// aggregator — the production wiring.
func feed(a *Aggregator, events ...beacon.Event) {
	store := beacon.NewStore()
	store.AddObserver(a.Observe)
	for _, e := range events {
		_ = store.Submit(e)
	}
}

func TestLifecycleClassification(t *testing.T) {
	clk := &fakeClock{t: t0}
	a := newTestAgg(clk, -1)
	feed(a,
		// imp-1: served only → not measured.
		ev("imp-1", "c", "", beacon.EventServed, 0, "display", t0),
		// imp-2: served + loaded → measured, not viewed.
		ev("imp-2", "c", "", beacon.EventServed, 0, "display", t0),
		ev("imp-2", "c", beacon.SourceQTag, beacon.EventLoaded, 0, "display", t0),
		// imp-3: full lifecycle → viewed.
		ev("imp-3", "c", "", beacon.EventServed, 0, "display", t0),
		ev("imp-3", "c", beacon.SourceQTag, beacon.EventLoaded, 0, "display", t0),
		ev("imp-3", "c", beacon.SourceQTag, beacon.EventInView, 0, "display", t0.Add(time.Second)),
	)
	snap := a.Snapshot()
	if len(snap.Rows) != 1 {
		t.Fatalf("rows = %d, want 1: %+v", len(snap.Rows), snap.Rows)
	}
	r := snap.Rows[0]
	if r.CampaignID != "c" || r.Format != "display" || r.Impressions != 3 || r.Served != 3 {
		t.Fatalf("row = %+v", r)
	}
	q := r.Sources["qtag"]
	want := SourceCounts{Measured: 2, Viewed: 1, NotViewed: 1, NotMeasured: 1,
		MeasuredRate: 2.0 / 3.0, ViewabilityRate: 0.5}
	if q != want {
		t.Fatalf("qtag counts = %+v, want %+v", q, want)
	}
	// The commercial source never checked in: everything not-measured.
	if c := r.Sources["commercial"]; c.NotMeasured != 3 || c.Measured != 0 {
		t.Fatalf("commercial counts = %+v", c)
	}
}

// TestOutOfOrderArrival: in-view before loaded, out-of-view before
// in-view — the final classification and dwell must not depend on
// arrival order.
func TestOutOfOrderArrival(t *testing.T) {
	clk := &fakeClock{t: t0}
	events := []beacon.Event{
		ev("i", "c", beacon.SourceQTag, beacon.EventOutOfView, 0, "", t0.Add(3*time.Second)),
		ev("i", "c", beacon.SourceQTag, beacon.EventInView, 0, "", t0.Add(1*time.Second)),
		ev("i", "c", beacon.SourceQTag, beacon.EventLoaded, 0, "", t0),
		ev("i", "c", "", beacon.EventServed, 0, "", t0),
	}
	var snaps []Snapshot
	// Forward, reversed, and rotated arrival orders.
	for _, order := range [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 3, 0, 1}} {
		a := newTestAgg(clk, -1)
		for _, i := range order {
			feedOne(a, events[i])
		}
		snaps = append(snaps, a.Snapshot())
	}
	for i := 1; i < len(snaps); i++ {
		if !reflect.DeepEqual(snaps[0], snaps[i]) {
			t.Fatalf("order %d diverges:\n got %+v\nwant %+v", i, snaps[i], snaps[0])
		}
	}
	q := snaps[0].Rows[0].Sources["qtag"]
	if q.Viewed != 1 || q.NotViewed != 0 || q.NotMeasured != 0 {
		t.Fatalf("qtag = %+v", q)
	}
	if len(snaps[0].Dwell) != 1 || snaps[0].Dwell[0].Dwell.Count != 1 ||
		snaps[0].Dwell[0].Dwell.SumNs != int64(2*time.Second) {
		t.Fatalf("dwell = %+v", snaps[0].Dwell)
	}
}

// feedOne submits a single event through a throwaway store-less path:
// callers guarantee first-seen semantics themselves.
func feedOne(a *Aggregator, e beacon.Event) { a.Observe(e) }

func TestDwellCyclesAndClamp(t *testing.T) {
	clk := &fakeClock{t: t0}
	a := newTestAgg(clk, -1)
	feed(a,
		// Two full cycles: 1s and 4s dwell.
		ev("i", "c", beacon.SourceQTag, beacon.EventInView, 0, "", t0),
		ev("i", "c", beacon.SourceQTag, beacon.EventOutOfView, 0, "", t0.Add(time.Second)),
		ev("i", "c", beacon.SourceQTag, beacon.EventInView, 1, "", t0.Add(2*time.Second)),
		ev("i", "c", beacon.SourceQTag, beacon.EventOutOfView, 1, "", t0.Add(6*time.Second)),
		// Skewed pair (out before in on the clock): clamps to 0.
		ev("j", "c", beacon.SourceQTag, beacon.EventInView, 0, "", t0.Add(time.Second)),
		ev("j", "c", beacon.SourceQTag, beacon.EventOutOfView, 0, "", t0),
		// Open cycle: no sample.
		ev("k", "c", beacon.SourceQTag, beacon.EventInView, 0, "", t0),
	)
	if got := a.DwellPairs(); got != 3 {
		t.Fatalf("pairs = %d, want 3", got)
	}
	snap := a.Snapshot()
	if len(snap.Dwell) != 1 {
		t.Fatalf("dwell rows = %+v", snap.Dwell)
	}
	d := snap.Dwell[0].Dwell
	if d.Count != 3 || d.SumNs != int64(5*time.Second) {
		t.Fatalf("dwell = %+v", d)
	}
	if p := d.Quantile(0.5); p <= 0 || p > 5 {
		t.Fatalf("p50 = %v", p)
	}
}

// TestFormatMigration: an impression whose events disagree on format
// settles in the lexicographically smallest non-empty bucket, moving
// every contribution with it, in any arrival order.
func TestFormatMigration(t *testing.T) {
	clk := &fakeClock{t: t0}
	events := []beacon.Event{
		ev("i", "c", "", beacon.EventServed, 0, "video", t0),
		ev("i", "c", beacon.SourceQTag, beacon.EventLoaded, 0, "display", t0),
		ev("i", "c", beacon.SourceQTag, beacon.EventInView, 0, "", t0),
	}
	for _, order := range [][]int{{0, 1, 2}, {2, 1, 0}, {1, 0, 2}} {
		a := newTestAgg(clk, -1)
		for _, i := range order {
			feedOne(a, events[i])
		}
		snap := a.Snapshot()
		if len(snap.Rows) != 1 {
			t.Fatalf("order %v: rows = %+v (migration must drain the old row)", order, snap.Rows)
		}
		r := snap.Rows[0]
		if r.Format != "display" || r.Impressions != 1 || r.Served != 1 {
			t.Fatalf("order %v: row = %+v", order, r)
		}
		if q := r.Sources["qtag"]; q.Viewed != 1 || q.Measured != 1 || q.NotViewed != 0 {
			t.Fatalf("order %v: qtag = %+v", order, q)
		}
	}
}

func TestTTLEvictionBoundsMemoryAndFreezesTotals(t *testing.T) {
	clk := &fakeClock{t: t0}
	a := newTestAgg(clk, 10*time.Minute)
	store := beacon.NewStore()
	store.AddObserver(a.Observe)
	for i := 0; i < 500; i++ {
		imp := "imp-" + string(rune('a'+i%26)) + "-" + time.Duration(i).String()
		store.Submit(ev(imp, "c", "", beacon.EventServed, 0, "", t0))
		store.Submit(ev(imp, "c", beacon.SourceQTag, beacon.EventLoaded, 0, "", t0))
	}
	if got := a.OpenImpressions(); got != 500 {
		t.Fatalf("open = %d, want 500", got)
	}
	before := a.Snapshot()

	// Not idle long enough: nothing goes.
	clk.t = t0.Add(5 * time.Minute)
	if n := a.Sweep(clk.t); n != 0 {
		t.Fatalf("early sweep evicted %d", n)
	}
	// Past the TTL: everything goes, totals stay.
	clk.t = t0.Add(11 * time.Minute)
	if n := a.Sweep(clk.t); n != 500 {
		t.Fatalf("sweep evicted %d, want 500", n)
	}
	if got := a.OpenImpressions(); got != 0 {
		t.Fatalf("open after sweep = %d", got)
	}
	if a.Evicted() != 500 {
		t.Fatalf("evicted counter = %d", a.Evicted())
	}
	if !reflect.DeepEqual(before, a.Snapshot()) {
		t.Fatal("eviction changed the campaign totals")
	}

	// A late beacon for an evicted impression re-opens it as a fresh
	// impression — internally consistent (buckets still partition), just
	// double counted, which is the documented TTL-too-short tradeoff.
	store.Submit(ev("imp-a-0s", "c", beacon.SourceQTag, beacon.EventInView, 0, "", t0))
	r := a.Snapshot().Rows[0]
	q := r.Sources["qtag"]
	if q.Viewed+q.NotViewed+q.NotMeasured != r.Impressions {
		t.Fatalf("partition invariant broken after re-open: %+v of %d", q, r.Impressions)
	}
}

func TestSweepDisabled(t *testing.T) {
	clk := &fakeClock{t: t0}
	a := newTestAgg(clk, -1)
	feed(a, ev("i", "c", "", beacon.EventServed, 0, "", t0))
	clk.t = t0.Add(24 * time.Hour)
	if n := a.Sweep(clk.t); n != 0 {
		t.Fatalf("disabled TTL evicted %d", n)
	}
	if a.OpenImpressions() != 1 {
		t.Fatal("state dropped with eviction disabled")
	}
}

func TestWindowsRollupAndEviction(t *testing.T) {
	clk := &fakeClock{t: t0}
	a := New(Options{Shards: 1, TTL: -1, Window: time.Minute, MaxWindows: 2, Now: clk.now})
	feed(a,
		ev("i1", "c", "", beacon.EventServed, 0, "", t0),
		ev("i1", "c", beacon.SourceQTag, beacon.EventInView, 0, "", t0),
	)
	clk.t = t0.Add(time.Minute)
	feed(a, ev("i2", "c", "", beacon.EventServed, 0, "", t0))
	ws := a.Windows()
	if len(ws) != 2 {
		t.Fatalf("windows = %d, want 2", len(ws))
	}
	w0 := ws[0].Campaigns["c"]
	if w0.Events != 2 || w0.Impressions != 1 || w0.Viewed != 1 {
		t.Fatalf("window 0 = %+v", w0)
	}
	// Two slots later: both earlier windows fall off the retention
	// horizon (the intervening slot is empty, so one window remains).
	clk.t = t0.Add(3 * time.Minute)
	feed(a, ev("i3", "c", "", beacon.EventServed, 0, "", t0))
	ws = a.Windows()
	if len(ws) != 1 {
		t.Fatalf("retained windows = %d, want 1: %+v", len(ws), ws)
	}
	if !ws[0].Start.Equal(t0.Add(3 * time.Minute)) {
		t.Fatalf("retained window starts %v, want %v", ws[0].Start, t0.Add(3*time.Minute))
	}
}

func TestRegisterMetrics(t *testing.T) {
	clk := &fakeClock{t: t0}
	a := newTestAgg(clk, 10*time.Minute)
	reg := obs.NewRegistry()
	a.RegisterMetrics(reg)
	feed(a,
		ev("i", "c", beacon.SourceQTag, beacon.EventInView, 0, "", t0),
		ev("i", "c", beacon.SourceQTag, beacon.EventOutOfView, 0, "", t0.Add(time.Second)),
	)
	vals := reg.Values()
	for name, want := range map[string]float64{
		"qtag_aggregate_updates_total":     2,
		"qtag_aggregate_open_impressions":  1,
		"qtag_aggregate_dwell_pairs_total": 1,
		"qtag_aggregate_campaign_rows":     1,
		"qtag_aggregate_evicted_total":     0,
	} {
		if got := vals[name]; got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if vals["qtag_aggregate_dwell_seconds_count"] != 1 {
		t.Errorf("dwell histogram count = %v", vals["qtag_aggregate_dwell_seconds_count"])
	}
	if !strings.Contains(reg.Render(), "qtag_aggregate_open_impressions") {
		t.Error("exposition missing aggregate gauges")
	}
}

// TestObserveIgnoresInvalid: the observer contract says only validated
// events arrive, but a stray invalid event must be a no-op, not a panic.
func TestObserveIgnoresInvalid(t *testing.T) {
	clk := &fakeClock{t: t0}
	a := newTestAgg(clk, -1)
	a.Observe(beacon.Event{Type: beacon.EventServed}) // no ids
	a.Observe(beacon.Event{ImpressionID: "i", CampaignID: "c", Type: "bogus"})
	if a.Updates() != 0 || len(a.Snapshot().Rows) != 0 {
		t.Fatal("invalid events were aggregated")
	}
}

package aggregate

import (
	"sort"
	"time"
)

// windowCounts is one campaign's activity inside one rollup window.
type windowCounts struct {
	Events      int64 `json:"events"`
	Impressions int64 `json:"impressions"` // impressions first seen in this window
	Viewed      int64 `json:"viewed"`      // impressions that became viewed in this window
}

// window is one fixed-width rollup bucket keyed by arrival time.
type window struct {
	start time.Time
	camps map[string]*windowCounts
}

// windowRing keeps the most recent MaxWindows rollup windows, evicting
// the oldest as arrival time advances — the time-windowed face of the
// aggregator, bounded regardless of traffic volume or clock skew in
// event payloads (windows go by the arrival clock, not Event.At).
type windowRing struct {
	width time.Duration
	max   int
	// windows is keyed by window start (unix nanos / width); small — at
	// most max entries — so a map beats maintaining an actual ring.
	windows map[int64]*window
}

func (r *windowRing) init(width time.Duration, max int) {
	r.width = width
	r.max = max
	r.windows = make(map[int64]*window)
}

// observe folds one event's transitions into its arrival window. Not
// self-synchronized: the Aggregator wraps every call in its winMu.
func (r *windowRing) observe(now time.Time, campaign string, created, viewedFirst bool) {
	slot := now.UnixNano() / int64(r.width)
	w := r.windows[slot]
	if w == nil {
		w = &window{start: time.Unix(0, slot*int64(r.width)).UTC(), camps: make(map[string]*windowCounts)}
		r.windows[slot] = w
		// Evict everything older than the retention horizon.
		for k := range r.windows {
			if k <= slot-int64(r.max) {
				delete(r.windows, k)
			}
		}
	}
	c := w.camps[campaign]
	if c == nil {
		c = &windowCounts{}
		w.camps[campaign] = c
	}
	c.Events++
	if created {
		c.Impressions++
	}
	if viewedFirst {
		c.Viewed++
	}
}

// WindowSnapshot is one rollup window, shaped for the /report payload.
type WindowSnapshot struct {
	Start     time.Time               `json:"start"`
	Campaigns map[string]windowCounts `json:"campaigns"`
}

// snapshot copies the retained windows sorted oldest-first.
func (r *windowRing) snapshot() []WindowSnapshot {
	out := make([]WindowSnapshot, 0, len(r.windows))
	for _, w := range r.windows {
		ws := WindowSnapshot{Start: w.start, Campaigns: make(map[string]windowCounts, len(w.camps))}
		for id, c := range w.camps {
			ws.Campaigns[id] = *c
		}
		out = append(out, ws)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Package aggregate maintains streaming per-campaign viewability
// accumulators — the campaign-level product the paper's §4–§5 report:
// for every campaign × ad format, how many impressions were viewed,
// measured-but-not-viewed, and not measured by each solution, plus
// in-view dwell-time histograms from paired in-view/out-of-view beacons.
//
// The aggregator is fed by the beacon store's first-seen-event observer
// (Store.AddObserver), so it inherits the store's idempotency: duplicate
// beacons, HTTP retries and overlapping WAL replays never reach it, and
// rebuilding it from a WAL replay on boot reproduces exactly the state a
// continuously-running process would hold. Every update is incremental —
// serving a report never scans raw events — and per-impression working
// state is evicted on a TTL so memory stays bounded under unbounded
// traffic while the campaign counters keep their all-time totals.
//
// Classification per impression and source s (mirrors §6's definitions):
//
//	viewed        ≥1 in-view event from s
//	not-viewed    ≥1 loaded event from s, no in-view
//	not-measured  everything else (no loaded check-in from s)
//
// The three buckets partition the campaign's distinct impressions, so
// viewed + not-viewed + not-measured = impressions always holds — even
// across evictions. The streaming state is proven equivalent to a batch
// recompute over the raw event set by the property tests in this
// package (see Recompute).
package aggregate

import (
	"sync"
	"sync/atomic"
	"time"

	"qtag/internal/beacon"
	"qtag/internal/obs"
)

// Options tunes an Aggregator. The zero value picks sensible defaults.
type Options struct {
	// Shards is the impression-state partition count, rounded up to a
	// power of two (default 16, matching the beacon store).
	Shards int
	// TTL evicts an impression's working state after this much arrival-
	// clock idle time (default 15m; <0 disables eviction, 0 means the
	// default). Campaign counters are never evicted — only the per-
	// impression dedup/pairing state is. TTL must exceed the longest
	// served→last-beacon gap or a late beacon re-opens the impression and
	// counts it again.
	TTL time.Duration
	// Window is the rollup window width (default 1m).
	Window time.Duration
	// MaxWindows bounds retained rollup windows (default 60).
	MaxWindows int
	// MaxOpen caps the total number of open impression working states
	// across all shards (0: unbounded, the default). When an insert
	// pushes past the cap, the least-recently-touched impression in the
	// same shard is evicted immediately — pressure eviction raises the
	// same frozen-totals semantics as TTL eviction, just early, so the
	// aggregator degrades measurement fidelity instead of growing until
	// the kernel OOM-kills the whole node.
	MaxOpen int
	// DwellBounds are the dwell histogram bucket upper bounds in seconds
	// (default obs.DwellBuckets).
	DwellBounds []float64
	// Now is the arrival clock used for TTL accounting and window
	// assignment (default time.Now). Tests inject a fake.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 16
	}
	if o.TTL == 0 {
		o.TTL = 15 * time.Minute
	}
	if o.Window <= 0 {
		o.Window = time.Minute
	}
	if o.MaxWindows <= 0 {
		o.MaxWindows = 60
	}
	if o.DwellBounds == nil {
		o.DwellBounds = obs.DwellBuckets
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// srcState is one solution's progress on one open impression.
type srcState struct {
	loaded bool
	viewed bool
	// inAt / outAt hold unpaired in-view / out-of-view timestamps by
	// cycle Seq; a completed pair is folded into the dwell histogram and
	// deleted, so these stay tiny.
	inAt  map[int]time.Time
	outAt map[int]time.Time
}

// impression is the bounded working state for one (campaign, impression
// id): enough to classify status transitions and pair dwell cycles,
// nothing more. It is dropped by TTL eviction once the impression goes
// idle; the campaign counters it contributed to stay.
type impression struct {
	format    string // current format bucket (see formatBucket)
	served    bool
	lastTouch time.Time // arrival clock, drives TTL eviction
	sources   map[beacon.Source]*srcState
}

// aggShard is one lock-striped partition of the open-impression map.
type aggShard struct {
	mu   sync.Mutex
	open map[string]*impression
}

// rowKey addresses one campaign × format accumulator row.
type rowKey struct {
	Campaign string
	Format   string
}

// srcCounts are one row's per-solution status counters. notViewed is
// maintained with decrements (loaded-then-in-view moves the impression
// from not-viewed to viewed), so it is not monotonic — it is a gauge of
// the current classification, not an event count.
type srcCounts struct {
	measured  int64 // impressions with a loaded check-in
	viewed    int64 // impressions with an in-view
	notViewed int64 // loaded but (so far) no in-view
}

// row is one campaign × format accumulator.
type row struct {
	impressions int64 // distinct impressions observed
	served      int64 // impressions with a served event
	src         map[beacon.Source]*srcCounts
}

// dwellKey addresses one campaign × source dwell histogram. Dwell is
// not sliced by format: an impression may migrate format buckets when a
// late event carries a different format, and histograms cannot be
// un-observed.
type dwellKey struct {
	Campaign string
	Source   string
}

// campShard is one lock-striped partition of the campaign table. A
// campaign's rows and dwell histograms all live in one shard, so a
// format migration is atomic under a single lock.
type campShard struct {
	mu    sync.Mutex
	rows  map[rowKey]*row
	dwell map[dwellKey]*DwellHist
}

// Aggregator is the streaming accumulator set. All methods are safe for
// concurrent use. Feed it through beacon.Store.AddObserver so it only
// ever sees first-seen events.
type Aggregator struct {
	opts   Options
	shards []aggShard  // open impressions, by hash(campaign|impression)
	camps  []campShard // accumulators, by hash(campaign)
	mask   uint32

	winMu   sync.Mutex
	windows windowRing

	updates    atomic.Int64 // events folded in
	evicted    atomic.Int64 // impression states dropped (TTL + pressure)
	pressureEv atomic.Int64 // the subset evicted by the MaxOpen cap
	openCount  atomic.Int64 // open impression states, across all shards
	dwellObs   *obs.Histogram
	dwellPair  atomic.Int64 // completed in-view/out-of-view pairs
}

// New returns an empty aggregator.
func New(opts Options) *Aggregator {
	opts = opts.withDefaults()
	size := 1
	for size < opts.Shards {
		size <<= 1
	}
	a := &Aggregator{
		opts:     opts,
		shards:   make([]aggShard, size),
		camps:    make([]campShard, size),
		mask:     uint32(size - 1),
		dwellObs: obs.NewHistogram(opts.DwellBounds...),
	}
	for i := range a.shards {
		a.shards[i].open = make(map[string]*impression)
	}
	for i := range a.camps {
		a.camps[i].rows = make(map[rowKey]*row)
		a.camps[i].dwell = make(map[dwellKey]*DwellHist)
	}
	a.windows.init(opts.Window, opts.MaxWindows)
	return a
}

// fnv1a is the same hash the beacon store shards by, so co-sharding
// behaves identically.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// formatBucket decides which format row an impression belongs to: the
// lexicographically smallest non-empty format seen across its events,
// or "" when no event carried one. The rule is order-independent, which
// is what makes streaming aggregation equal batch recompute when events
// of one impression disagree on format (they should not, but the wire
// does not enforce it).
func formatBucket(current, incoming string) string {
	if incoming == "" {
		return current
	}
	if current == "" || incoming < current {
		return incoming
	}
	return current
}

// Observe folds one first-seen event into the accumulators. It is
// designed to be installed as a beacon.Store observer: the caller
// guarantees the event is not a duplicate, and that events of one
// impression arrive serialized (the store's shard lock does both).
// Events that fail validation are ignored — the store never emits them.
func (a *Aggregator) Observe(e beacon.Event) {
	if e.Validate() != nil {
		return
	}
	now := a.opts.Now()
	key := e.CampaignID + "|" + e.ImpressionID
	sh := &a.shards[fnv1a(key)&a.mask]

	sh.mu.Lock()
	st, ok := sh.open[key]
	created := !ok
	if created {
		st = &impression{sources: make(map[beacon.Source]*srcState)}
		sh.open[key] = st
	}
	st.lastTouch = now

	// Work out every transition under the impression lock, then apply
	// them to the campaign shard (nested imp→camp lock order, always).
	oldFormat := st.format
	st.format = formatBucket(st.format, e.Meta.Format)
	migrated := !created && st.format != oldFormat

	cs := &a.camps[fnv1a(e.CampaignID)&a.mask]
	cs.mu.Lock()
	if migrated {
		// Move the impression's pre-event contributions first; the deltas
		// from this event then land on the new row only, never both.
		cs.migrate(st, e.CampaignID, oldFormat, st.format)
	}

	var servedFirst, loadedFirst, viewedFirst bool
	var dwells []time.Duration
	switch e.Type {
	case beacon.EventServed:
		servedFirst = !st.served
		st.served = true
	case beacon.EventLoaded, beacon.EventInView, beacon.EventOutOfView:
		src := st.sources[e.Source]
		if src == nil {
			src = &srcState{}
			st.sources[e.Source] = src
		}
		switch e.Type {
		case beacon.EventLoaded:
			loadedFirst = !src.loaded
			src.loaded = true
		case beacon.EventInView:
			if !src.viewed {
				viewedFirst = true
				src.viewed = true
			}
			if src.inAt == nil {
				src.inAt = make(map[int]time.Time)
			}
			if _, dup := src.inAt[e.Seq]; !dup {
				if out, ok := src.outAt[e.Seq]; ok {
					dwells = append(dwells, dwellOf(e.At, out))
					delete(src.outAt, e.Seq)
				} else {
					src.inAt[e.Seq] = e.At
				}
			}
		case beacon.EventOutOfView:
			if in, ok := src.inAt[e.Seq]; ok {
				dwells = append(dwells, dwellOf(in, e.At))
				delete(src.inAt, e.Seq)
			} else {
				if src.outAt == nil {
					src.outAt = make(map[int]time.Time)
				}
				src.outAt[e.Seq] = e.At
			}
		}
	}

	r := cs.row(rowKey{e.CampaignID, st.format})
	if created {
		r.impressions++
	}
	if servedFirst {
		r.served++
	}
	if loadedFirst || viewedFirst {
		sc := r.srcCounts(e.Source)
		if loadedFirst {
			sc.measured++
			if !st.sources[e.Source].viewed {
				sc.notViewed++
			}
		}
		if viewedFirst {
			sc.viewed++
			if st.sources[e.Source].loaded {
				sc.notViewed--
			}
		}
	}
	for _, d := range dwells {
		cs.dwellHist(dwellKey{e.CampaignID, string(e.Source)}, a.opts.DwellBounds).Observe(d)
	}
	cs.mu.Unlock()
	if created {
		a.openCount.Add(1)
		if a.opts.MaxOpen > 0 && a.openCount.Load() > int64(a.opts.MaxOpen) {
			a.evictColdestLocked(sh, key)
		}
	}
	sh.mu.Unlock()

	for _, d := range dwells {
		a.dwellObs.ObserveDuration(d)
		a.dwellPair.Add(1)
	}
	a.updates.Add(1)
	a.winMu.Lock()
	a.windows.observe(now, e.CampaignID, created, viewedFirst)
	a.winMu.Unlock()
}

// evictColdestLocked drops the least-recently-touched impression in sh,
// sparing keep (the state that just went over the cap — evicting the
// one impression we know is active would be pure churn). Caller holds
// sh.mu. The scan is per shard, so the cap is enforced approximately:
// a shard holding only the active key evicts nothing this round, and
// the working set converges back under MaxOpen as traffic spreads over
// the shards. Frozen-totals semantics match TTL eviction exactly.
func (a *Aggregator) evictColdestLocked(sh *aggShard, keep string) {
	var coldest string
	var coldestAt time.Time
	for k, st := range sh.open {
		if k == keep {
			continue
		}
		if coldest == "" || st.lastTouch.Before(coldestAt) {
			coldest, coldestAt = k, st.lastTouch
		}
	}
	if coldest == "" {
		return
	}
	delete(sh.open, coldest)
	a.openCount.Add(-1)
	a.evicted.Add(1)
	a.pressureEv.Add(1)
}

// Windows returns the retained rollup windows, oldest first.
func (a *Aggregator) Windows() []WindowSnapshot {
	a.winMu.Lock()
	defer a.winMu.Unlock()
	return a.windows.snapshot()
}

// dwellOf is the dwell of one in-view→out-of-view cycle; negative spans
// (client clock skew) clamp to zero so the histogram sum stays sane.
func dwellOf(in, out time.Time) time.Duration {
	d := out.Sub(in)
	if d < 0 {
		return 0
	}
	return d
}

// row returns (creating if needed) the accumulator row. Caller holds
// the shard lock.
func (c *campShard) row(k rowKey) *row {
	r := c.rows[k]
	if r == nil {
		r = &row{src: make(map[beacon.Source]*srcCounts)}
		c.rows[k] = r
	}
	return r
}

// srcCounts returns (creating if needed) a row's per-source counters.
func (r *row) srcCounts(s beacon.Source) *srcCounts {
	sc := r.src[s]
	if sc == nil {
		sc = &srcCounts{}
		r.src[s] = sc
	}
	return sc
}

// dwellHist returns (creating if needed) the campaign × source dwell
// histogram. Caller holds the shard lock.
func (c *campShard) dwellHist(k dwellKey, bounds []float64) *DwellHist {
	h := c.dwell[k]
	if h == nil {
		h = NewDwellHist(bounds)
		c.dwell[k] = h
	}
	return h
}

// migrate moves one impression's accumulated contributions between
// format rows of the same campaign — triggered when a late event
// carries a lexicographically smaller format. Caller holds the shard
// lock; both rows live in it because they share the campaign.
func (c *campShard) migrate(st *impression, campaign, from, to string) {
	src := c.row(rowKey{campaign, from})
	dst := c.row(rowKey{campaign, to})
	src.impressions--
	dst.impressions++
	if st.served {
		src.served--
		dst.served++
	}
	for s, state := range st.sources {
		if !state.loaded && !state.viewed {
			continue
		}
		fc, tc := src.srcCounts(s), dst.srcCounts(s)
		if state.loaded {
			fc.measured--
			tc.measured++
		}
		switch {
		case state.viewed:
			fc.viewed--
			tc.viewed++
		case state.loaded:
			fc.notViewed--
			tc.notViewed++
		}
	}
	// A drained row is garbage only if nothing else contributes to it;
	// impressions is the invariant total, so zero means empty.
	if src.impressions == 0 {
		delete(c.rows, rowKey{campaign, from})
	}
}

// Sweep drops the working state of every impression idle for at least
// the TTL as of now, returning how many were evicted. The campaign
// counters keep their totals; only the dedup/pairing state goes, which
// bounds memory to TTL × arrival rate open impressions. Unpaired
// in-view cycles on an evicted impression never produce a dwell sample.
func (a *Aggregator) Sweep(now time.Time) int {
	if a.opts.TTL < 0 {
		return 0
	}
	evicted := 0
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.Lock()
		for k, st := range sh.open {
			if now.Sub(st.lastTouch) >= a.opts.TTL {
				delete(sh.open, k)
				evicted++
			}
		}
		sh.mu.Unlock()
	}
	a.evicted.Add(int64(evicted))
	a.openCount.Add(-int64(evicted))
	return evicted
}

// OpenImpressions returns how many impressions currently hold working
// state — the quantity TTL eviction bounds.
func (a *Aggregator) OpenImpressions() int {
	n := 0
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.Lock()
		n += len(sh.open)
		sh.mu.Unlock()
	}
	return n
}

// Updates returns how many first-seen events have been folded in.
func (a *Aggregator) Updates() int64 { return a.updates.Load() }

// Evicted returns how many impression states eviction has dropped
// (TTL sweeps plus MaxOpen pressure evictions).
func (a *Aggregator) Evicted() int64 { return a.evicted.Load() }

// PressureEvicted returns the subset of evictions forced by the MaxOpen
// working-set cap rather than the TTL sweep.
func (a *Aggregator) PressureEvicted() int64 { return a.pressureEv.Load() }

// DwellPairs returns how many in-view/out-of-view cycles completed.
func (a *Aggregator) DwellPairs() int64 { return a.dwellPair.Load() }

// RegisterMetrics exports the aggregation layer on a metrics registry:
// throughput, the memory-bounding gauges, and the global dwell
// histogram (per-campaign dwell lives on GET /report).
func (a *Aggregator) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("qtag_aggregate_updates_total", "First-seen events folded into the streaming accumulators.", a.updates.Load)
	r.CounterFunc("qtag_aggregate_evicted_total", "Impression working states dropped by TTL eviction.", a.evicted.Load)
	r.CounterFunc("qtag_aggregate_pressure_evicted_total", "Impression working states evicted early by the MaxOpen cap.", a.pressureEv.Load)
	r.CounterFunc("qtag_aggregate_dwell_pairs_total", "Completed in-view/out-of-view dwell cycles.", a.dwellPair.Load)
	r.GaugeFunc("qtag_aggregate_open_impressions", "Impressions currently holding working state (bounded by TTL eviction).",
		func() float64 { return float64(a.OpenImpressions()) })
	r.GaugeFunc("qtag_aggregate_campaign_rows", "Campaign × format accumulator rows.",
		func() float64 { return float64(a.rowCount()) })
	r.RegisterHistogram("qtag_aggregate_dwell_seconds", "In-view dwell per completed cycle, all campaigns.", a.dwellObs)
}

func (a *Aggregator) rowCount() int {
	n := 0
	for i := range a.camps {
		cs := &a.camps[i]
		cs.mu.Lock()
		n += len(cs.rows)
		cs.mu.Unlock()
	}
	return n
}

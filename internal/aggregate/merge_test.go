package aggregate

import (
	"reflect"
	"testing"
	"time"

	"qtag/internal/beacon"
)

// buildSnapshot ingests events into a fresh aggregator and returns its
// snapshot — the same shape a federated peer would serve.
func buildSnapshot(t *testing.T, events []beacon.Event) Snapshot {
	t.Helper()
	a := New(Options{Now: func() time.Time { return time.Unix(1000, 0) }})
	for _, e := range events {
		a.Observe(e)
	}
	return a.Snapshot()
}

func mev(imp string, typ beacon.EventType, src beacon.Source) beacon.Event {
	return beacon.Event{
		ImpressionID: imp,
		CampaignID:   "c1",
		Source:       src,
		Type:         typ,
		At:           time.Unix(999, 0),
	}
}

func TestMergeAddsDisjointPartitions(t *testing.T) {
	// Node A owns impressions i1, i2; node B owns i3. Together they form
	// the same population a single node would have seen.
	nodeA := buildSnapshot(t, []beacon.Event{
		mev("i1", beacon.EventServed, beacon.SourceQTag),
		mev("i1", beacon.EventLoaded, beacon.SourceQTag),
		mev("i1", beacon.EventInView, beacon.SourceQTag),
		mev("i2", beacon.EventServed, beacon.SourceQTag),
		mev("i2", beacon.EventLoaded, beacon.SourceQTag),
	})
	nodeB := buildSnapshot(t, []beacon.Event{
		mev("i3", beacon.EventServed, beacon.SourceQTag),
		mev("i3", beacon.EventLoaded, beacon.SourceQTag),
		mev("i3", beacon.EventInView, beacon.SourceQTag),
	})
	whole := buildSnapshot(t, []beacon.Event{
		mev("i1", beacon.EventServed, beacon.SourceQTag),
		mev("i1", beacon.EventLoaded, beacon.SourceQTag),
		mev("i1", beacon.EventInView, beacon.SourceQTag),
		mev("i2", beacon.EventServed, beacon.SourceQTag),
		mev("i2", beacon.EventLoaded, beacon.SourceQTag),
		mev("i3", beacon.EventServed, beacon.SourceQTag),
		mev("i3", beacon.EventLoaded, beacon.SourceQTag),
		mev("i3", beacon.EventInView, beacon.SourceQTag),
	})

	merged := Merge(nodeA, nodeB)
	if !reflect.DeepEqual(merged, whole) {
		t.Fatalf("merged snapshot != whole-population snapshot\nmerged: %+v\nwhole:  %+v", merged, whole)
	}
	if len(merged.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(merged.Rows))
	}
	qc := merged.Rows[0].Sources["qtag"]
	if qc.Measured != 3 || qc.Viewed != 2 {
		t.Fatalf("qtag counts = %+v, want Measured=3 Viewed=2", qc)
	}
	// Rates must come from merged counts (2/3), not averaged node rates
	// (which would be (1 + 1/2) / 2 = 0.75).
	if got, want := qc.ViewabilityRate, 2.0/3.0; got != want {
		t.Fatalf("ViewabilityRate = %v, want %v", got, want)
	}
}

func TestMergeOrderInsensitive(t *testing.T) {
	a := buildSnapshot(t, []beacon.Event{
		mev("i1", beacon.EventServed, beacon.SourceQTag),
		mev("i1", beacon.EventLoaded, beacon.SourceCommercial),
	})
	b := buildSnapshot(t, []beacon.Event{
		mev("i2", beacon.EventServed, beacon.SourceQTag),
		mev("i2", beacon.EventLoaded, beacon.SourceQTag),
		mev("i2", beacon.EventInView, beacon.SourceQTag),
	})
	c := buildSnapshot(t, []beacon.Event{
		mev("i3", beacon.EventServed, beacon.SourceCommercial),
	})
	if got, want := Merge(a, b, c), Merge(c, a, b); !reflect.DeepEqual(got, want) {
		t.Fatalf("merge not order-insensitive:\n%+v\nvs\n%+v", got, want)
	}
	// Merging a single snapshot is the identity.
	if got := Merge(b); !reflect.DeepEqual(got, b) {
		t.Fatalf("Merge(single) changed the snapshot:\n%+v\nvs\n%+v", got, b)
	}
	// Zero snapshots merge to the empty snapshot.
	if got := Merge(); len(got.Rows) != 0 || len(got.Dwell) != 0 {
		t.Fatalf("Merge() = %+v, want empty", got)
	}
}

func TestMergeDwellHistograms(t *testing.T) {
	mk := func(imp string, dwellMs int64) []beacon.Event {
		base := time.Unix(999, 0)
		return []beacon.Event{
			{ImpressionID: imp, CampaignID: "c1", Source: beacon.SourceQTag, Type: beacon.EventServed, At: base},
			{ImpressionID: imp, CampaignID: "c1", Source: beacon.SourceQTag, Type: beacon.EventInView, At: base},
			{ImpressionID: imp, CampaignID: "c1", Source: beacon.SourceQTag, Type: beacon.EventOutOfView, At: base.Add(time.Duration(dwellMs) * time.Millisecond)},
		}
	}
	a := buildSnapshot(t, mk("i1", 1500))
	b := buildSnapshot(t, mk("i2", 700))
	merged := Merge(a, b)
	if len(merged.Dwell) != 1 {
		t.Fatalf("dwell rows = %d, want 1", len(merged.Dwell))
	}
	d := merged.Dwell[0].Dwell
	if d.Count != 2 {
		t.Fatalf("dwell count = %d, want 2", d.Count)
	}
	wantSum := int64(1500+700) * int64(time.Millisecond)
	if d.SumNs != wantSum {
		t.Fatalf("dwell sum = %d, want %d", d.SumNs, wantSum)
	}
	var buckets int64
	for _, n := range d.Buckets {
		buckets += n
	}
	if buckets != 2 {
		t.Fatalf("bucket total = %d, want 2", buckets)
	}
}

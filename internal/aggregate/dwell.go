package aggregate

import (
	"sync"
	"time"
)

// DwellHist is a fixed-bucket dwell-time histogram with integer
// accumulation: counts and the nanosecond sum are int64, so two
// histograms fed the same samples in any order are exactly equal — the
// property the streaming≡batch equivalence tests rely on, which a
// float64 sum (addition-order dependent) could not give. Bounds are in
// seconds with Prometheus "le" semantics. Safe for concurrent use.
type DwellHist struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1, last is +Inf
	sumNs  int64
	n      int64
}

// NewDwellHist returns an empty histogram over the given upper bounds
// (which must be sorted ascending; obs.DwellBuckets is).
func NewDwellHist(bounds []float64) *DwellHist {
	return &DwellHist{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// Observe records one dwell sample.
func (h *DwellHist) Observe(d time.Duration) {
	s := d.Seconds()
	i := len(h.bounds)
	for j, b := range h.bounds {
		if s <= b {
			i = j
			break
		}
	}
	h.mu.Lock()
	h.counts[i]++
	h.sumNs += int64(d)
	h.n++
	h.mu.Unlock()
}

// DwellSnapshot is a point-in-time copy of a DwellHist, shaped for JSON
// and for exact (DeepEqual) comparison.
type DwellSnapshot struct {
	Count int64 `json:"count"`
	SumNs int64 `json:"sum_ns"`
	// Buckets are per-bucket (non-cumulative) counts; the last entry is
	// the +Inf overflow bucket.
	Buckets []int64 `json:"buckets"`
	// Bounds are the bucket upper bounds in seconds.
	Bounds []float64 `json:"bounds"`
}

// Snapshot copies the histogram.
func (h *DwellHist) Snapshot() DwellSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return DwellSnapshot{
		Count:   h.n,
		SumNs:   h.sumNs,
		Buckets: append([]int64(nil), h.counts...),
		Bounds:  append([]float64(nil), h.bounds...),
	}
}

// Quantile interpolates the q-quantile (0..1) in seconds from the
// bucket counts, the same way obs.Histogram does: linear within the
// target bucket, with the overflow bucket reporting its lower bound.
// Returns 0 for an empty histogram.
func (s DwellSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := int64(0)
	for i, c := range s.Buckets {
		cum += c
		if float64(cum) >= rank && c > 0 {
			if i >= len(s.Bounds) { // +Inf bucket
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			frac := (rank - float64(cum-c)) / float64(c)
			return lo + (s.Bounds[i]-lo)*frac
		}
	}
	return 0
}

// MeanSeconds returns the mean dwell in seconds (0 when empty).
func (s DwellSnapshot) MeanSeconds() float64 {
	if s.Count == 0 {
		return 0
	}
	return (time.Duration(s.SumNs) / time.Duration(s.Count)).Seconds()
}

package aggregate

import (
	"sort"

	"qtag/internal/beacon"
)

// SourceCounts is one solution's classification of a row's impressions,
// as served on GET /report. Viewed + NotViewed + NotMeasured equals the
// row's Impressions; the rates derive from the counts, so two snapshots
// with equal counts are equal everywhere.
type SourceCounts struct {
	Measured    int64 `json:"measured"`
	Viewed      int64 `json:"viewed"`
	NotViewed   int64 `json:"not_viewed"`
	NotMeasured int64 `json:"not_measured"`
	// MeasuredRate is measured / served (0 when nothing served).
	MeasuredRate float64 `json:"measured_rate"`
	// ViewabilityRate is viewed / measured (0 when nothing measured) —
	// the paper's campaign viewability rate.
	ViewabilityRate float64 `json:"viewability_rate"`
}

// Row is one campaign × format line of the report.
type Row struct {
	CampaignID  string                  `json:"campaign_id"`
	Format      string                  `json:"format,omitempty"`
	Impressions int64                   `json:"impressions"`
	Served      int64                   `json:"served"`
	Sources     map[string]SourceCounts `json:"sources"`
}

// DwellRow is one campaign × source dwell histogram of the report.
type DwellRow struct {
	CampaignID string        `json:"campaign_id"`
	Source     string        `json:"source"`
	Dwell      DwellSnapshot `json:"dwell"`
}

// Snapshot is the aggregator's full deterministic state: rows sorted by
// (campaign, format), dwell rows by (campaign, source). Two aggregators
// fed the same deduplicated event set — in any order, at any
// concurrency, across any crash/replay boundary — produce DeepEqual
// snapshots; the equivalence property tests enforce exactly that.
type Snapshot struct {
	Rows  []Row      `json:"rows"`
	Dwell []DwellRow `json:"dwell,omitempty"`
}

// canonicalSources always appear in every row, so report consumers can
// rely on the qtag/commercial split existing even before a solution has
// checked in.
var canonicalSources = []beacon.Source{beacon.SourceQTag, beacon.SourceCommercial}

// Snapshot copies the accumulators. Shard locks are taken one at a
// time, so under concurrent ingest the result is consistent per
// campaign shard; after quiescence it is exact.
func (a *Aggregator) Snapshot() Snapshot {
	var snap Snapshot
	for i := range a.camps {
		cs := &a.camps[i]
		cs.mu.Lock()
		for k, r := range cs.rows {
			row := Row{
				CampaignID:  k.Campaign,
				Format:      k.Format,
				Impressions: r.impressions,
				Served:      r.served,
				Sources:     make(map[string]SourceCounts, len(r.src)+2),
			}
			for _, s := range canonicalSources {
				row.Sources[string(s)] = exportSource(r, r.src[s])
			}
			for s, sc := range r.src {
				if _, done := row.Sources[string(s)]; !done {
					row.Sources[string(s)] = exportSource(r, sc)
				}
			}
			snap.Rows = append(snap.Rows, row)
		}
		for k, h := range cs.dwell {
			snap.Dwell = append(snap.Dwell, DwellRow{CampaignID: k.Campaign, Source: k.Source, Dwell: h.Snapshot()})
		}
		cs.mu.Unlock()
	}
	sort.Slice(snap.Rows, func(i, j int) bool {
		a, b := snap.Rows[i], snap.Rows[j]
		if a.CampaignID != b.CampaignID {
			return a.CampaignID < b.CampaignID
		}
		return a.Format < b.Format
	})
	sort.Slice(snap.Dwell, func(i, j int) bool {
		a, b := snap.Dwell[i], snap.Dwell[j]
		if a.CampaignID != b.CampaignID {
			return a.CampaignID < b.CampaignID
		}
		return a.Source < b.Source
	})
	return snap
}

// exportSource derives the report counts from one row's counters; sc
// may be nil (source never seen — everything is not-measured).
func exportSource(r *row, sc *srcCounts) SourceCounts {
	out := SourceCounts{}
	if sc != nil {
		out.Measured = sc.measured
		out.Viewed = sc.viewed
		out.NotViewed = sc.notViewed
	}
	out.NotMeasured = r.impressions - out.Viewed - out.NotViewed
	if r.served > 0 {
		out.MeasuredRate = float64(out.Measured) / float64(r.served)
	}
	if out.Measured > 0 {
		out.ViewabilityRate = float64(out.Viewed) / float64(out.Measured)
	}
	return out
}

// CampaignIDs returns the distinct campaigns present, sorted.
func (a *Aggregator) CampaignIDs() []string {
	seen := map[string]bool{}
	for i := range a.camps {
		cs := &a.camps[i]
		cs.mu.Lock()
		for k := range cs.rows {
			seen[k.Campaign] = true
		}
		cs.mu.Unlock()
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Recompute is the batch oracle the streaming path is proven against:
// it rebuilds an aggregator from scratch by pushing the raw event set
// through a fresh deduplicating store with the aggregator attached as
// its observer — exactly the wiring a live server uses, minus time.
// Duplicates in events collapse, order does not matter. TTL eviction is
// disabled (a batch recompute sees all of history at once).
func Recompute(events []beacon.Event, opts Options) *Aggregator {
	opts = opts.withDefaults()
	opts.TTL = -1
	agg := New(opts)
	store := beacon.NewStore()
	store.AddObserver(agg.Observe)
	for _, e := range events {
		_ = store.Submit(e) // invalid events are skipped, as at ingest
	}
	return agg
}

package aggregate

import (
	"fmt"
	"testing"
	"time"

	"qtag/internal/beacon"
)

// TestMaxOpenPressureEviction proves the working-set cap: inserts past
// MaxOpen evict the coldest impression in the shard instead of growing,
// the pressure-evicted counter attributes them, and campaign totals are
// frozen (not rolled back) exactly like TTL eviction.
func TestMaxOpenPressureEviction(t *testing.T) {
	clock := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	a := New(Options{
		Shards:  1, // one shard so the per-shard coldest scan is global
		MaxOpen: 8,
		Now:     func() time.Time { return clock },
	})
	for i := 0; i < 50; i++ {
		clock = clock.Add(time.Second) // strictly increasing lastTouch
		a.Observe(beacon.Event{
			ImpressionID: fmt.Sprintf("imp-%03d", i),
			CampaignID:   "c1",
			Type:         beacon.EventServed,
			At:           clock,
		})
	}
	if got := a.OpenImpressions(); got > 8 {
		t.Fatalf("open impressions = %d, want ≤ MaxOpen 8", got)
	}
	if got := a.PressureEvicted(); got != 42 {
		t.Fatalf("pressure evicted = %d, want 42 (50 inserts − 8 cap)", got)
	}
	if got := a.Evicted(); got != 42 {
		t.Fatalf("Evicted = %d, want pressure evictions included (42)", got)
	}
	// Totals are frozen, not rolled back: all 50 impressions counted.
	if imps := campaignImpressions(a, "c1"); imps != 50 {
		t.Fatalf("campaign impressions = %d, want 50 despite eviction", imps)
	}
}

// campaignImpressions sums a campaign's impression count across formats.
func campaignImpressions(a *Aggregator, id string) int64 {
	var n int64
	for _, row := range a.Snapshot().Rows {
		if row.CampaignID == id {
			n += row.Impressions
		}
	}
	return n
}

// TestMaxOpenZeroUnbounded: the default keeps today's behavior.
func TestMaxOpenZeroUnbounded(t *testing.T) {
	a := New(Options{Shards: 1})
	for i := 0; i < 100; i++ {
		a.Observe(beacon.Event{
			ImpressionID: fmt.Sprintf("imp-%03d", i),
			CampaignID:   "c1",
			Type:         beacon.EventServed,
			At:           time.Unix(int64(i), 0),
		})
	}
	if got := a.OpenImpressions(); got != 100 {
		t.Fatalf("open impressions = %d, want 100 (unbounded)", got)
	}
	if got := a.PressureEvicted(); got != 0 {
		t.Fatalf("pressure evicted = %d, want 0", got)
	}
}

// TestMaxOpenSpareActive: the impression that just went over the cap is
// never its own victim.
func TestMaxOpenSpareActive(t *testing.T) {
	clock := time.Unix(0, 0)
	a := New(Options{Shards: 1, MaxOpen: 1, Now: func() time.Time { return clock }})
	a.Observe(beacon.Event{ImpressionID: "old", CampaignID: "c1",
		Type: beacon.EventServed, At: clock})
	clock = clock.Add(time.Second)
	a.Observe(beacon.Event{ImpressionID: "new", CampaignID: "c1",
		Type: beacon.EventServed, At: clock})
	if got := a.OpenImpressions(); got != 1 {
		t.Fatalf("open impressions = %d, want 1", got)
	}
	// A follow-up on "new" must not re-create it (it survived).
	before := a.Updates()
	clock = clock.Add(time.Second)
	a.Observe(beacon.Event{ImpressionID: "new", CampaignID: "c1",
		Source: beacon.SourceQTag, Type: beacon.EventLoaded, At: clock})
	if a.Updates() != before+1 {
		t.Fatal("follow-up event not folded")
	}
	if imps := campaignImpressions(a, "c1"); imps != 2 { // "old" frozen + "new" live, no re-count
		t.Fatalf("campaign impressions = %d, want 2", imps)
	}
}

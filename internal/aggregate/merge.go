package aggregate

import "sort"

// Merge combines per-node report snapshots into one cluster-wide
// snapshot — the federation step behind GET /report?federated=1.
//
// The merge is sound because the cluster's consistent-hash routing
// partitions impressions across nodes: every impression (and therefore
// every row contribution) is owned by exactly one node, so the counts
// are disjoint and simply add. Rates are recomputed from the merged
// counts, never averaged — averaging per-node rates would weight small
// partitions equally with large ones. Dwell histograms add bucket-wise
// when their bounds agree (the cluster runs one configuration); on a
// bounds mismatch the buckets of the later snapshot are dropped but its
// Count/SumNs still contribute, so totals stay exact even if the shape
// degrades.
//
// Merge is associative and commutative up to ordering, and the result
// is deterministically sorted like Aggregator.Snapshot — merging the
// same set of snapshots in any order yields DeepEqual results.
func Merge(snaps ...Snapshot) Snapshot {
	type rowKey struct{ campaign, format string }
	type dwellKey struct{ campaign, source string }
	rows := make(map[rowKey]*Row)
	dwell := make(map[dwellKey]*DwellSnapshot)

	for _, s := range snaps {
		for _, r := range s.Rows {
			k := rowKey{r.CampaignID, r.Format}
			acc, ok := rows[k]
			if !ok {
				acc = &Row{CampaignID: r.CampaignID, Format: r.Format, Sources: map[string]SourceCounts{}}
				rows[k] = acc
			}
			acc.Impressions += r.Impressions
			acc.Served += r.Served
			for src, c := range r.Sources {
				sc := acc.Sources[src]
				sc.Measured += c.Measured
				sc.Viewed += c.Viewed
				sc.NotViewed += c.NotViewed
				sc.NotMeasured += c.NotMeasured
				acc.Sources[src] = sc
			}
		}
		for _, d := range s.Dwell {
			k := dwellKey{d.CampaignID, d.Source}
			acc, ok := dwell[k]
			if !ok {
				cp := d.Dwell
				cp.Buckets = append([]int64(nil), d.Dwell.Buckets...)
				cp.Bounds = append([]float64(nil), d.Dwell.Bounds...)
				dwell[k] = &cp
				continue
			}
			acc.Count += d.Dwell.Count
			acc.SumNs += d.Dwell.SumNs
			if boundsEqual(acc.Bounds, d.Dwell.Bounds) {
				for i := range d.Dwell.Buckets {
					acc.Buckets[i] += d.Dwell.Buckets[i]
				}
			}
		}
	}

	var out Snapshot
	for _, r := range rows {
		// A source missing from one partition's row means that partition
		// measured nothing for it; its not-measured share is implicit in
		// the partition's own NotMeasured export, which every canonical
		// source carries. Recompute the rates from the merged counts.
		for src, sc := range r.Sources {
			sc.MeasuredRate = 0
			sc.ViewabilityRate = 0
			if r.Served > 0 {
				sc.MeasuredRate = float64(sc.Measured) / float64(r.Served)
			}
			if sc.Measured > 0 {
				sc.ViewabilityRate = float64(sc.Viewed) / float64(sc.Measured)
			}
			r.Sources[src] = sc
		}
		out.Rows = append(out.Rows, *r)
	}
	for k, d := range dwell {
		out.Dwell = append(out.Dwell, DwellRow{CampaignID: k.campaign, Source: k.source, Dwell: *d})
	}
	sort.Slice(out.Rows, func(i, j int) bool {
		a, b := out.Rows[i], out.Rows[j]
		if a.CampaignID != b.CampaignID {
			return a.CampaignID < b.CampaignID
		}
		return a.Format < b.Format
	})
	sort.Slice(out.Dwell, func(i, j int) bool {
		a, b := out.Dwell[i], out.Dwell[j]
		if a.CampaignID != b.CampaignID {
			return a.CampaignID < b.CampaignID
		}
		return a.Source < b.Source
	})
	return out
}

func boundsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

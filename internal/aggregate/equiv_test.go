// Equivalence property tests: the streaming accumulators must equal a
// batch recompute over the raw event set — for any arrival order, any
// interleaving across goroutines, any amount of duplicate delivery, and
// across a crash/WAL-replay boundary. This is the invariant that makes
// GET /report trustworthy: it serves streaming state, but the answer is
// provably what a scan of the store would say.
package aggregate

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"qtag/internal/beacon"
	"qtag/internal/simrand"
	"qtag/internal/wal"
)

// aggStream draws n events with deliberate collisions, like the beacon
// package's randomStream, plus the fields the aggregator cares about:
// formats (including per-impression disagreements that force format
// migration) and in-view/out-of-view timestamps that pair into dwell
// cycles. Non-key fields are derived from (impression, type, seq), so
// duplicate stream entries are byte-identical — the precondition for
// order independence.
func aggStream(seed uint64, n int) []beacon.Event {
	rng := simrand.New(seed).Fork("agg-equiv-stream")
	types := []beacon.EventType{beacon.EventServed, beacon.EventLoaded, beacon.EventInView, beacon.EventOutOfView}
	sources := []beacon.Source{beacon.SourceQTag, beacon.SourceCommercial}
	formats := []string{"banner", "interstitial", "video", ""}
	out := make([]beacon.Event, 0, n)
	for i := 0; i < n; i++ {
		ti := rng.Intn(len(types))
		typ := types[ti]
		imp := rng.Intn(n/4 + 1)
		at := time.Unix(1500000000+int64(imp), 0).UTC()
		if typ == beacon.EventOutOfView {
			// Out-of-view trails its in-view by a per-impression dwell, so
			// pairs produce deterministic histogram sums.
			at = at.Add(time.Duration(imp%5) * 700 * time.Millisecond)
		}
		format := formats[imp%len(formats)]
		if imp%7 == 0 {
			// Some impressions disagree on format across event types —
			// the wire does not forbid it — exercising row migration.
			format = formats[(imp+ti)%len(formats)]
		}
		e := beacon.Event{
			ImpressionID: fmt.Sprintf("imp-%d", imp),
			CampaignID:   fmt.Sprintf("camp-%d", imp%3),
			Type:         typ,
			At:           at,
			Seq:          imp % 2,
			Meta:         beacon.Meta{Format: format, OS: "android"},
		}
		if typ != beacon.EventServed {
			e.Source = sources[imp%len(sources)]
		}
		out = append(out, e)
	}
	return out
}

func testOpts(shards int) Options {
	return Options{Shards: shards, TTL: -1, Now: func() time.Time { return t0 }}
}

// assertEquivalent compares the streaming snapshot against the batch
// oracle (Recompute over the store's raw events) and checks the
// classification partition invariant on both.
func assertEquivalent(t *testing.T, label string, a *Aggregator, store *beacon.Store, opts Options) {
	t.Helper()
	got := a.Snapshot()
	want := Recompute(store.Events(), opts).Snapshot()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: streaming != batch recompute\n got: %+v\nwant: %+v", label, got, want)
	}
	assertPartition(t, label, got)
}

// assertPartition: viewed + not-viewed + not-measured = impressions for
// every row and source, all counts non-negative, rates in [0,1].
func assertPartition(t *testing.T, label string, s Snapshot) {
	t.Helper()
	for _, r := range s.Rows {
		if r.Impressions < 0 || r.Served < 0 || r.Served > r.Impressions {
			t.Fatalf("%s: row %s/%s counts out of range: %+v", label, r.CampaignID, r.Format, r)
		}
		for src, c := range r.Sources {
			if c.Viewed+c.NotViewed+c.NotMeasured != r.Impressions {
				t.Fatalf("%s: %s/%s source %s partition broken: %+v of %d impressions",
					label, r.CampaignID, r.Format, src, c, r.Impressions)
			}
			// Measured (has a loaded check-in) is NOT viewed+notViewed:
			// a rogue in-view with no loaded still classifies as viewed,
			// so only the not-viewed leg implies measured.
			if c.NotViewed > c.Measured {
				t.Fatalf("%s: %s/%s source %s not-viewed exceeds measured: %+v", label, r.CampaignID, r.Format, src, c)
			}
			if c.Viewed < 0 || c.NotViewed < 0 || c.NotMeasured < 0 {
				t.Fatalf("%s: %s/%s source %s negative count: %+v", label, r.CampaignID, r.Format, src, c)
			}
			// Rates can exceed 1 on inconsistent wire input (loaded with
			// no served, in-view with no loaded) — truthful, not clamped —
			// but must never be negative.
			if c.MeasuredRate < 0 || c.ViewabilityRate < 0 {
				t.Fatalf("%s: %s/%s source %s negative rate: %+v", label, r.CampaignID, r.Format, src, c)
			}
		}
	}
}

// TestStreamingBatchEquivalence: sequential ingest through a store at
// several shard counts matches the batch oracle exactly.
func TestStreamingBatchEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 42, 0xbeef} {
		stream := aggStream(seed, 1200)
		for _, shards := range []int{1, 4, 16} {
			opts := testOpts(shards)
			a := New(opts)
			store := beacon.NewStore()
			store.AddObserver(a.Observe)
			for _, e := range stream {
				if err := store.Submit(e); err != nil {
					t.Fatalf("submit: %v", err)
				}
			}
			assertEquivalent(t, fmt.Sprintf("seed=%d shards=%d", seed, shards), a, store, opts)
		}
	}
}

// TestStreamingEquivalenceConcurrent: the same stream interleaved
// across goroutines — plus a full duplicate pass — converges to the
// same snapshot. Run under -race this also proves the observer wiring
// is data-race free.
func TestStreamingEquivalenceConcurrent(t *testing.T) {
	stream := aggStream(77, 1600)
	for _, shards := range []int{1, 8} {
		opts := testOpts(shards)
		a := New(opts)
		store := beacon.NewStore()
		store.AddObserver(a.Observe)
		const workers = 8
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(stream); i += workers {
					store.Submit(stream[i])
				}
				if w == 0 {
					// Duplicate delivery: a second full pass racing the
					// first; the store's dedup must absorb every repeat
					// before it reaches the aggregator.
					for _, e := range stream {
						store.Submit(e)
					}
				}
			}(w)
		}
		wg.Wait()
		assertEquivalent(t, fmt.Sprintf("concurrent shards=%d", shards), a, store, opts)
	}
}

// TestStreamingEquivalenceDuplicateDelivery: replaying the whole stream
// again — and again in reverse — changes nothing.
func TestStreamingEquivalenceDuplicateDelivery(t *testing.T) {
	stream := aggStream(9, 900)
	opts := testOpts(4)
	a := New(opts)
	store := beacon.NewStore()
	store.AddObserver(a.Observe)
	for _, e := range stream {
		store.Submit(e)
	}
	once := a.Snapshot()
	for _, e := range stream {
		store.Submit(e)
	}
	for i := len(stream) - 1; i >= 0; i-- {
		store.Submit(stream[i])
	}
	if !reflect.DeepEqual(once, a.Snapshot()) {
		t.Fatal("duplicate delivery changed the aggregates")
	}
	assertEquivalent(t, "duplicates", a, store, opts)
}

// TestStreamingEquivalenceCrashRecovery: an aggregator rebuilt by WAL
// replay on boot (observer attached before OpenDurable, exactly as
// qtag-server wires it) equals both the pre-crash aggregator and the
// batch oracle — including when a snapshot+compaction ran mid-stream,
// so part of the state is restored from the snapshot and the rest from
// the WAL tail.
func TestStreamingEquivalenceCrashRecovery(t *testing.T) {
	stream := aggStream(0xfeed, 1000)
	dir := t.TempDir()
	opts := testOpts(8)

	a1 := New(opts)
	store1 := beacon.NewStore()
	store1.AddObserver(a1.Observe)
	wj, _, err := beacon.OpenDurable(wal.Options{Dir: dir, Fsync: wal.FsyncAlways}, store1)
	if err != nil {
		t.Fatalf("open durable: %v", err)
	}
	sink := beacon.Tee(store1, wj)
	half := len(stream) / 2
	for _, e := range stream[:half] {
		if err := sink.Submit(e); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	if _, err := wj.Snapshot(store1); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	for _, e := range stream[half:] {
		if err := sink.Submit(e); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	preCrash := a1.Snapshot()
	// Crash: no Close, no final sync beyond FsyncAlways's per-record
	// guarantee. Everything submitted is durable.

	a2 := New(opts)
	store2 := beacon.NewStore()
	store2.AddObserver(a2.Observe) // before replay, as in cmd/qtag-server
	wj2, rec, err := beacon.OpenDurable(wal.Options{Dir: dir, Fsync: wal.FsyncAlways}, store2)
	if err != nil {
		t.Fatalf("reopen durable: %v", err)
	}
	defer wj2.Close()
	if got := rec.SnapshotRestored + rec.Replayed; got == 0 {
		t.Fatal("recovery replayed nothing")
	}
	if rec.SnapshotRestored == 0 {
		t.Fatal("recovery did not restore from the snapshot")
	}
	if store2.Len() != store1.Len() {
		t.Fatalf("recovered %d events, want %d", store2.Len(), store1.Len())
	}
	if got := a2.Snapshot(); !reflect.DeepEqual(got, preCrash) {
		t.Fatalf("rebuilt aggregates != pre-crash aggregates\n got: %+v\nwant: %+v", got, preCrash)
	}
	assertEquivalent(t, "crash-recovery", a2, store2, opts)
}

// TestStreamingEquivalenceSecondObserver: attaching another observer
// alongside the aggregator (as qtag-server does with internal/detect)
// must not perturb the aggregates — the fan-out delivers the identical
// first-seen stream to both, and the second hook sees every distinct
// event exactly once.
func TestStreamingEquivalenceSecondObserver(t *testing.T) {
	stream := aggStream(0xcafe, 1100)
	opts := testOpts(8)
	a := New(opts)
	store := beacon.NewStore()
	store.AddObserver(a.Observe)
	var mu sync.Mutex
	counts := map[string]int{}
	store.AddObserver(func(e beacon.Event) {
		mu.Lock()
		counts[e.Key()]++
		mu.Unlock()
	})
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(stream); i += workers {
				store.Submit(stream[i])
			}
		}(w)
	}
	wg.Wait()
	for _, e := range stream { // duplicate pass: neither observer fires again
		store.Submit(e)
	}
	if len(counts) != store.Len() {
		t.Fatalf("second observer saw %d distinct events, store holds %d", len(counts), store.Len())
	}
	for k, n := range counts {
		if n != 1 {
			t.Fatalf("second observer saw %q %d times", k, n)
		}
	}
	assertEquivalent(t, "second-observer", a, store, opts)
}

package adtag

import (
	"testing"
	"time"

	"qtag/internal/obs"
	"qtag/internal/simclock"
)

func TestRuntimeTrace(t *testing.T) {
	e := newEnv(t, chromeProfile(), false)

	// Without a tracer, Trace is a safe no-op.
	e.rt.Trace(obs.StageTagStart, "untracked")

	tr := obs.NewLifecycleTracer(simclock.Epoch)
	e.rt.SetTracer(tr)
	e.clock.Advance(1500 * time.Millisecond)
	e.rt.Trace(obs.StageClassified, "pixels=25")

	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1 (pre-tracer call must not record)", len(spans))
	}
	s := spans[0]
	if s.Impression != "imp-7" || s.Campaign != "camp-3" {
		t.Errorf("span identity = %s/%s, want imp-7/camp-3", s.Impression, s.Campaign)
	}
	if s.Stage != obs.StageClassified || s.Detail != "pixels=25" {
		t.Errorf("span = %+v", s)
	}
	// Timestamps are virtual: the span sits at the clock's offset.
	if s.At != 1500*time.Millisecond {
		t.Errorf("span At = %v, want 1.5s of virtual time", s.At)
	}
}

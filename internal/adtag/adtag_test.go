package adtag

import (
	"errors"
	"testing"
	"time"

	"qtag/internal/beacon"
	"qtag/internal/browser"
	"qtag/internal/dom"
	"qtag/internal/geom"
	"qtag/internal/simclock"
)

const (
	pub = dom.Origin("https://publisher.example")
	dsp = dom.Origin("https://dsp.example")
)

type env struct {
	clock    *simclock.Clock
	browser  *browser.Browser
	page     *browser.Page
	creative *dom.Element
	store    *beacon.Store
	rt       *Runtime
}

// newEnv builds a runtime for a creative inside a single iframe whose
// origin is chosen by sameOrigin.
func newEnv(t *testing.T, prof browser.Profile, sameOrigin bool) *env {
	t.Helper()
	clock := simclock.New()
	b := browser.New(clock, browser.Options{Profile: prof})
	t.Cleanup(b.Close)
	w := b.OpenWindow(geom.Point{}, geom.Size{W: 1280, H: 720})
	doc := dom.NewDocument(pub, geom.Size{W: 1280, H: 4000})
	page := w.ActiveTab().Navigate(doc)
	origin := dsp
	if sameOrigin {
		origin = pub
	}
	frame := doc.Root().AttachIframe(origin, geom.Rect{X: 100, Y: 100, W: 300, H: 250})
	creative := frame.Root().AppendChild("creative", geom.Rect{X: 0, Y: 0, W: 300, H: 250})
	store := beacon.NewStore()
	rt := NewRuntime(page, creative, store, Impression{
		ID: "imp-7", CampaignID: "camp-3",
		Meta: beacon.Meta{OS: "Android", SiteType: "app"},
	})
	return &env{clock: clock, browser: b, page: page, creative: creative, store: store, rt: rt}
}

func chromeProfile() browser.Profile { return browser.CertificationProfiles()[1] }

func TestRuntimeBasics(t *testing.T) {
	e := newEnv(t, chromeProfile(), false)
	if e.rt.Impression().ID != "imp-7" {
		t.Error("impression accessor wrong")
	}
	if e.rt.CreativeSize() != (geom.Size{W: 300, H: 250}) {
		t.Errorf("CreativeSize = %v", e.rt.CreativeSize())
	}
	e.clock.Advance(3 * time.Second)
	if e.rt.Now() != 3*time.Second {
		t.Errorf("Now = %v", e.rt.Now())
	}
	if e.rt.String() == "" {
		t.Error("String empty")
	}
	if e.rt.Profile().Name != chromeProfile().Name {
		t.Error("Profile accessor wrong")
	}
}

func TestTimers(t *testing.T) {
	e := newEnv(t, chromeProfile(), false)
	var once, ticks int
	e.rt.AfterFunc(time.Second, func() { once++ })
	e.rt.Every(time.Second, func() { ticks++ })
	e.clock.Advance(3500 * time.Millisecond)
	if once != 1 || ticks != 3 {
		t.Errorf("once=%d ticks=%d", once, ticks)
	}
}

func TestCreatePixelClampsToCreative(t *testing.T) {
	e := newEnv(t, chromeProfile(), false)
	px := e.rt.CreatePixel(geom.Point{X: 300, Y: 250}) // bottom-right corner
	r := px.Rect()
	if r.MaxX() > 300 || r.MaxY() > 250 {
		t.Errorf("pixel rect %v exceeds the creative box", r)
	}
	inner := e.rt.CreatePixel(geom.Point{X: 10, Y: 20})
	if inner.Rect() != (geom.Rect{X: 10, Y: 20, W: 1, H: 1}) {
		t.Errorf("inner pixel rect = %v", inner.Rect())
	}
}

func TestObservePixelPaints(t *testing.T) {
	e := newEnv(t, chromeProfile(), false)
	px := e.rt.CreatePixel(geom.Point{X: 150, Y: 125})
	var n int
	if _, err := e.rt.ObservePixelPaints(px, func(time.Duration) { n++ }); err != nil {
		t.Fatal(err)
	}
	e.clock.Advance(time.Second)
	if n < 55 || n > 65 {
		t.Errorf("paint count = %d, want ~60", n)
	}
}

func TestObservePixelPaintsUnsupported(t *testing.T) {
	prof := chromeProfile()
	prof.SupportsFrameCallbacks = false
	e := newEnv(t, prof, false)
	px := e.rt.CreatePixel(geom.Point{X: 150, Y: 125})
	if _, err := e.rt.ObservePixelPaints(px, func(time.Duration) {}); !errors.Is(err, ErrNoFrameCallbacks) {
		t.Errorf("err = %v, want ErrNoFrameCallbacks", err)
	}
}

func TestSendBeaconFillsIdentity(t *testing.T) {
	e := newEnv(t, chromeProfile(), false)
	e.clock.Advance(2 * time.Second)
	if err := e.rt.SendBeacon(beacon.SourceQTag, beacon.EventLoaded, 0); err != nil {
		t.Fatal(err)
	}
	events := e.store.Events()
	if len(events) != 1 {
		t.Fatalf("store has %d events", len(events))
	}
	ev := events[0]
	if ev.ImpressionID != "imp-7" || ev.CampaignID != "camp-3" {
		t.Errorf("identity not filled: %+v", ev)
	}
	if ev.Meta.OS != "Android" || ev.Meta.SiteType != "app" {
		t.Errorf("meta not copied: %+v", ev.Meta)
	}
	if !ev.At.Equal(simclock.Epoch.Add(2 * time.Second)) {
		t.Errorf("timestamp = %v", ev.At)
	}
}

func TestGeometryAPISOPGuard(t *testing.T) {
	cross := newEnv(t, chromeProfile(), false)
	if _, err := cross.rt.BoundingRectInTop(); !errors.Is(err, dom.ErrCrossOrigin) {
		t.Errorf("cross-origin BoundingRectInTop err = %v", err)
	}
	if _, err := cross.rt.ViewportInfo(); !errors.Is(err, dom.ErrCrossOrigin) {
		t.Errorf("cross-origin ViewportInfo err = %v", err)
	}

	same := newEnv(t, chromeProfile(), true)
	r, err := same.rt.BoundingRectInTop()
	if err != nil {
		t.Fatalf("same-origin geometry should work: %v", err)
	}
	if r != (geom.Rect{X: 100, Y: 100, W: 300, H: 250}) {
		t.Errorf("rect = %v", r)
	}
	vp, err := same.rt.ViewportInfo()
	if err != nil || vp != (geom.Rect{X: 0, Y: 0, W: 1280, H: 720}) {
		t.Errorf("viewport = %v, err = %v", vp, err)
	}
}

func TestIntersectionRatio(t *testing.T) {
	e := newEnv(t, chromeProfile(), false) // Chrome has IntersectionObserver
	frac, err := e.rt.IntersectionRatio()
	if err != nil {
		t.Fatal(err)
	}
	if frac != 1 {
		t.Errorf("fully visible creative ratio = %v", frac)
	}
	e.page.ScrollTo(geom.Point{Y: 225}) // half the ad above the viewport top
	frac, _ = e.rt.IntersectionRatio()
	if frac != 0.5 {
		t.Errorf("half-cut ratio = %v", frac)
	}

	prof := chromeProfile()
	prof.SupportsIntersectionObserver = false
	old := newEnv(t, prof, false)
	if _, err := old.rt.IntersectionRatio(); !errors.Is(err, ErrNoIntersectionObserver) {
		t.Errorf("err = %v, want ErrNoIntersectionObserver", err)
	}
}

func TestPageHidden(t *testing.T) {
	e := newEnv(t, chromeProfile(), false)
	if e.rt.PageHidden() {
		t.Error("active tab should not be hidden")
	}
	w := e.page.Tab().Window()
	w.ActivateTab(w.NewTab())
	if !e.rt.PageHidden() {
		t.Error("background tab should be hidden")
	}
	// Page Visibility does NOT know about occlusion.
	w.ActivateTab(e.page.Tab())
	w.SetObscured(true)
	if e.rt.PageHidden() {
		t.Error("occlusion must be invisible to the Page Visibility API")
	}
}

func TestClose(t *testing.T) {
	e := newEnv(t, chromeProfile(), false)
	px := e.rt.CreatePixel(geom.Point{X: 150, Y: 125})
	var paints, ticks int
	e.rt.ObservePixelPaints(px, func(time.Duration) { paints++ })
	e.rt.Every(100*time.Millisecond, func() { ticks++ })
	e.clock.Advance(500 * time.Millisecond)
	p0, t0 := paints, ticks
	e.rt.Close()
	e.rt.Close() // double close safe
	e.clock.Advance(time.Second)
	if paints != p0 || ticks != t0 {
		t.Errorf("closed runtime still active: paints %d→%d ticks %d→%d", p0, paints, t0, ticks)
	}
}

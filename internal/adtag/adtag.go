// Package adtag provides the runtime an ad tag executes in.
//
// An ad tag is a script a vendor ships inside the creative's iframe (§3).
// Because that iframe is usually cross-origin, the script's view of the
// world is narrow, and this package models exactly that capability
// surface:
//
//   - timers (setTimeout/setInterval equivalents on the virtual clock),
//   - frame/paint callbacks on elements it creates inside its own iframe
//     (the requestAnimationFrame-style facility Q-Tag builds on),
//   - beacon transport to a collection server,
//   - a SOP-guarded geometry API (fails with dom.ErrCrossOrigin across
//     frame boundaries), and
//   - an IntersectionObserver-style cross-origin visibility API that is
//     only present when the environment supports it.
//
// Q-Tag (internal/qtag) uses only the first three. The commercial
// baseline (internal/commercial) needs the last two, which is what limits
// its measured rate.
package adtag

import (
	"errors"
	"fmt"
	"time"

	"qtag/internal/beacon"
	"qtag/internal/browser"
	"qtag/internal/dom"
	"qtag/internal/geom"
	"qtag/internal/obs"
	"qtag/internal/simclock"
	"qtag/internal/viewability"
)

// ErrNoIntersectionObserver is returned by IntersectionRatio in
// environments without a cross-origin visibility API.
var ErrNoIntersectionObserver = errors.New("adtag: IntersectionObserver not supported in this environment")

// ErrNoFrameCallbacks is returned by ObservePixelPaints in environments
// without frame callbacks.
var ErrNoFrameCallbacks = errors.New("adtag: frame callbacks not supported in this environment")

// Impression identifies the ad impression a tag instance is measuring.
type Impression struct {
	// ID is the impression's unique identifier within its campaign.
	ID string
	// CampaignID is the campaign the impression belongs to.
	CampaignID string
	// Format is the ad format, which selects the viewability criteria.
	Format viewability.Format
	// Meta carries slicing attributes copied onto every beacon.
	Meta beacon.Meta
}

// Tag is a deployable measurement script.
type Tag interface {
	// Name identifies the solution ("qtag", "commercial", ...).
	Name() string
	// Deploy starts the tag inside the given runtime. The tag keeps
	// running via runtime timers/callbacks until the page dies.
	Deploy(rt *Runtime) error
}

// Runtime is the capability surface handed to a Tag. One Runtime instance
// corresponds to one tag execution inside one creative iframe.
type Runtime struct {
	page       *browser.Page
	creative   *dom.Element
	clock      *simclock.Clock
	sink       beacon.Sink
	impression Impression
	tracer     *obs.LifecycleTracer

	observers []*browser.PaintObserver
	timers    []*simclock.Timer
	pixels    []*dom.Element
	closed    bool
}

// NewRuntime wires a tag runtime to a creative element on a page. The
// sink receives the tag's beacons.
func NewRuntime(page *browser.Page, creative *dom.Element, sink beacon.Sink, imp Impression) *Runtime {
	return &Runtime{
		page:       page,
		creative:   creative,
		clock:      page.Tab().Window().Browser().Clock(),
		sink:       sink,
		impression: imp,
	}
}

// Impression returns the impression this runtime is measuring.
func (rt *Runtime) Impression() Impression { return rt.impression }

// SetTracer attaches a lifecycle tracer; subsequent Trace calls record
// spans for this impression. A nil tracer disables tracing (the default).
func (rt *Runtime) SetTracer(t *obs.LifecycleTracer) { rt.tracer = t }

// Trace records a lifecycle span for this impression at the current
// virtual time. It is a no-op without an attached tracer, so tags can
// call it unconditionally.
func (rt *Runtime) Trace(stage obs.Stage, detail string) {
	if rt.tracer == nil {
		return
	}
	rt.tracer.Record(rt.impression.ID, rt.impression.CampaignID, stage,
		simclock.Epoch.Add(rt.clock.Now()), detail)
}

// Now returns the current virtual time.
func (rt *Runtime) Now() time.Duration { return rt.clock.Now() }

// CreativeSize returns the size of the creative's box — a tag can always
// measure its own iframe.
func (rt *Runtime) CreativeSize() geom.Size {
	r := rt.creative.Rect()
	return geom.Size{W: r.W, H: r.H}
}

// AfterFunc schedules fn once, d from now (setTimeout).
func (rt *Runtime) AfterFunc(d time.Duration, fn func()) *simclock.Timer {
	t := rt.clock.AfterFunc(d, fn)
	rt.timers = append(rt.timers, t)
	return t
}

// Every schedules fn periodically (setInterval).
func (rt *Runtime) Every(d time.Duration, fn func()) *simclock.Timer {
	t := rt.clock.Every(d, fn)
	rt.timers = append(rt.timers, t)
	return t
}

// CreatePixel inserts a 1×1 monitoring pixel element inside the creative
// at the given position (in creative-local coordinates) and returns it.
// Positions on the right/bottom edges are inset so the whole pixel stays
// inside the creative box — a pixel hanging past its iframe would be
// clipped and never paint, biasing the measurement.
func (rt *Runtime) CreatePixel(at geom.Point) *dom.Element {
	local := rt.creative.Rect()
	x := geom.Clamp(at.X, 0, local.W-1)
	y := geom.Clamp(at.Y, 0, local.H-1)
	px := rt.creative.AppendChild("monitor-pixel",
		geom.Rect{X: local.X + x, Y: local.Y + y, W: 1, H: 1})
	rt.pixels = append(rt.pixels, px)
	return px
}

// ObservePixelPaints registers a per-frame paint callback on a monitoring
// pixel (its center point). This is the rAF/paint-timing facility; it
// fails in environments whose profile lacks frame callbacks.
func (rt *Runtime) ObservePixelPaints(px *dom.Element, fn browser.PaintFunc) (*browser.PaintObserver, error) {
	if !rt.page.Tab().Window().Browser().Profile().SupportsFrameCallbacks {
		return nil, ErrNoFrameCallbacks
	}
	po := rt.page.ObservePaint(px, px.Rect().Center(), fn)
	rt.observers = append(rt.observers, po)
	return po, nil
}

// SendBeacon emits an event to the monitoring server, filling in the
// impression identity, metadata and timestamp. Only the Type and Seq
// fields of the template are honoured; Source must be set by the caller
// (each tag knows its own name).
func (rt *Runtime) SendBeacon(src beacon.Source, typ beacon.EventType, seq int) error {
	return rt.sink.Submit(beacon.Event{
		ImpressionID: rt.impression.ID,
		CampaignID:   rt.impression.CampaignID,
		Source:       src,
		Type:         typ,
		Seq:          seq,
		At:           simclock.Epoch.Add(rt.clock.Now()),
		Meta:         rt.impression.Meta,
	})
}

// BoundingRectInTop is the SOP-guarded geometry API: the creative's box in
// top-document content coordinates, or dom.ErrCrossOrigin when any frame
// boundary on the path is cross-origin (the common case for ad iframes).
func (rt *Runtime) BoundingRectInTop() (geom.Rect, error) {
	return rt.creative.BoundingRectInTop()
}

// ViewportInfo returns the top window's viewport rectangle in content
// coordinates. Like BoundingRectInTop it is SOP-guarded: a cross-origin
// frame cannot read the top window's scroll position or size.
func (rt *Runtime) ViewportInfo() (geom.Rect, error) {
	if !rt.creative.Document().SameOriginWithTop() {
		return geom.Rect{}, dom.ErrCrossOrigin
	}
	return rt.page.ViewportRectInContent(), nil
}

// IntersectionRatio returns the creative's true exposed fraction via the
// environment's IntersectionObserver-style API. Unlike the geometry API it
// works across origins — but only where the environment provides it.
func (rt *Runtime) IntersectionRatio() (float64, error) {
	if !rt.page.Tab().Window().Browser().Profile().SupportsIntersectionObserver {
		return 0, ErrNoIntersectionObserver
	}
	return rt.page.TrueVisibleFraction(rt.creative), nil
}

// PageHidden models the Page Visibility API: it reports true when the
// tag's tab is not the active tab. Unlike the compositor, it knows
// nothing about window occlusion or off-screen positions — a documented
// blind spot of geometry-polling verifiers.
func (rt *Runtime) PageHidden() bool {
	return !rt.page.Tab().Active()
}

// Profile exposes the environment description for capability checks.
func (rt *Runtime) Profile() browser.Profile {
	return rt.page.Tab().Window().Browser().Profile()
}

// Close tears the tag down: cancels observers and timers and removes
// monitoring pixels' paint activity. Used when a session ends.
func (rt *Runtime) Close() {
	if rt.closed {
		return
	}
	rt.closed = true
	for _, o := range rt.observers {
		o.Cancel()
	}
	for _, t := range rt.timers {
		t.Stop()
	}
}

// String implements fmt.Stringer.
func (rt *Runtime) String() string {
	return fmt.Sprintf("Runtime(imp=%s camp=%s %v)", rt.impression.ID, rt.impression.CampaignID, rt.CreativeSize())
}

package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointAddSub(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -4}
	if got := p.Add(q); got != (Point{4, -2}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Add(q).Sub(q); got != p {
		t.Errorf("Add then Sub not identity: %v", got)
	}
}

func TestRectFromCorners(t *testing.T) {
	r := RectFromCorners(Point{5, 7}, Point{1, 2})
	want := Rect{X: 1, Y: 2, W: 4, H: 5}
	if r != want {
		t.Errorf("RectFromCorners = %v, want %v", r, want)
	}
}

func TestEmptyAndArea(t *testing.T) {
	cases := []struct {
		r     Rect
		empty bool
		area  float64
	}{
		{Rect{}, true, 0},
		{Rect{W: 10, H: 0}, true, 0},
		{Rect{W: 0, H: 10}, true, 0},
		{Rect{W: -5, H: 10}, true, 0},
		{Rect{X: 1, Y: 1, W: 2, H: 3}, false, 6},
	}
	for _, c := range cases {
		if got := c.r.Empty(); got != c.empty {
			t.Errorf("%v.Empty() = %v, want %v", c.r, got, c.empty)
		}
		if got := c.r.Area(); !approx(got, c.area) {
			t.Errorf("%v.Area() = %v, want %v", c.r, got, c.area)
		}
	}
}

func TestEdgesAndCenter(t *testing.T) {
	r := Rect{X: 10, Y: 20, W: 30, H: 40}
	if !approx(r.MaxX(), 40) || !approx(r.MaxY(), 60) {
		t.Errorf("MaxX/MaxY = %v/%v", r.MaxX(), r.MaxY())
	}
	if r.Min() != (Point{10, 20}) || r.Max() != (Point{40, 60}) {
		t.Errorf("Min/Max = %v/%v", r.Min(), r.Max())
	}
	if r.Center() != (Point{25, 40}) {
		t.Errorf("Center = %v", r.Center())
	}
}

func TestTranslate(t *testing.T) {
	r := Rect{X: 1, Y: 2, W: 3, H: 4}
	got := r.Translate(10, -20)
	want := Rect{X: 11, Y: -18, W: 3, H: 4}
	if got != want {
		t.Errorf("Translate = %v, want %v", got, want)
	}
}

func TestContains(t *testing.T) {
	r := Rect{X: 0, Y: 0, W: 10, H: 10}
	for _, p := range []Point{{0, 0}, {10, 10}, {5, 5}, {0, 10}} {
		if !r.Contains(p) {
			t.Errorf("expected %v to contain %v", r, p)
		}
	}
	for _, p := range []Point{{-0.1, 5}, {10.1, 5}, {5, -1}, {5, 11}} {
		if r.Contains(p) {
			t.Errorf("expected %v not to contain %v", r, p)
		}
	}
	if (Rect{}).Contains(Point{0, 0}) {
		t.Error("empty rect should contain nothing")
	}
}

func TestContainsRect(t *testing.T) {
	outer := Rect{X: 0, Y: 0, W: 100, H: 100}
	if !outer.ContainsRect(Rect{X: 10, Y: 10, W: 20, H: 20}) {
		t.Error("inner rect should be contained")
	}
	if !outer.ContainsRect(outer) {
		t.Error("rect should contain itself")
	}
	if outer.ContainsRect(Rect{X: 90, Y: 90, W: 20, H: 20}) {
		t.Error("overflowing rect should not be contained")
	}
	if outer.ContainsRect(Rect{}) {
		t.Error("empty rect is never contained")
	}
}

func TestIntersect(t *testing.T) {
	a := Rect{X: 0, Y: 0, W: 10, H: 10}
	b := Rect{X: 5, Y: 5, W: 10, H: 10}
	got := a.Intersect(b)
	want := Rect{X: 5, Y: 5, W: 5, H: 5}
	if got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if !a.Intersects(b) {
		t.Error("expected overlap")
	}
	// Touching edges do not count as overlap (zero area).
	c := Rect{X: 10, Y: 0, W: 5, H: 5}
	if !a.Intersect(c).Empty() || a.Intersects(c) {
		t.Error("edge-touching rects must not intersect")
	}
	d := Rect{X: 50, Y: 50, W: 1, H: 1}
	if !a.Intersect(d).Empty() {
		t.Error("disjoint rects must produce empty intersection")
	}
}

func TestUnion(t *testing.T) {
	a := Rect{X: 0, Y: 0, W: 2, H: 2}
	b := Rect{X: 5, Y: 5, W: 1, H: 1}
	got := a.Union(b)
	want := Rect{X: 0, Y: 0, W: 6, H: 6}
	if got != want {
		t.Errorf("Union = %v, want %v", got, want)
	}
	if a.Union(Rect{}) != a || (Rect{}).Union(a) != a {
		t.Error("union with empty should be identity")
	}
}

func TestVisibleFraction(t *testing.T) {
	ad := Rect{X: 0, Y: 0, W: 100, H: 100}
	viewport := Rect{X: 0, Y: 50, W: 1000, H: 1000}
	if got := ad.VisibleFraction(viewport); !approx(got, 0.5) {
		t.Errorf("VisibleFraction = %v, want 0.5", got)
	}
	if got := ad.VisibleFraction(Rect{}); got != 0 {
		t.Errorf("fraction vs empty clip = %v", got)
	}
	if got := (Rect{}).VisibleFraction(viewport); got != 0 {
		t.Errorf("fraction of empty rect = %v", got)
	}
	if got := ad.VisibleFraction(ad); !approx(got, 1) {
		t.Errorf("full visibility = %v", got)
	}
}

func TestSize(t *testing.T) {
	s := Size{W: 300, H: 250}
	if s.String() != "300x250" {
		t.Errorf("String = %q", s.String())
	}
	r := s.Rect(Point{10, 20})
	if r != (Rect{X: 10, Y: 20, W: 300, H: 250}) {
		t.Errorf("Rect = %v", r)
	}
	frac := Size{W: 1.5, H: 2}
	if frac.String() != "1.50x2.00" {
		t.Errorf("fractional String = %q", frac.String())
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 10) != 5 || Clamp(-1, 0, 10) != 0 || Clamp(11, 0, 10) != 10 {
		t.Error("Clamp broken")
	}
}

func TestStringers(t *testing.T) {
	if (Point{1, 2}).String() != "(1.00,2.00)" {
		t.Errorf("Point.String = %q", Point{1, 2}.String())
	}
	if (Rect{1, 2, 3, 4}).String() != "[1.00,2.00 3.00x4.00]" {
		t.Errorf("Rect.String = %q", Rect{1, 2, 3, 4}.String())
	}
}

// Property: intersection is commutative and its area never exceeds either input.
func TestIntersectProperties(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		norm := func(v float64) float64 { return math.Mod(math.Abs(v), 1000) }
		a := Rect{norm(ax), norm(ay), norm(aw), norm(ah)}
		b := Rect{norm(bx), norm(by), norm(bw), norm(bh)}
		ab, ba := a.Intersect(b), b.Intersect(a)
		if ab != ba {
			return false
		}
		if ab.Area() > a.Area()+1e-9 || ab.Area() > b.Area()+1e-9 {
			return false
		}
		if !ab.Empty() && (!a.ContainsRect(ab) || !b.ContainsRect(ab)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: VisibleFraction is always within [0,1] and monotone in the clip.
func TestVisibleFractionProperties(t *testing.T) {
	f := func(x, y, w, h, cx, cy, cw, ch float64) bool {
		norm := func(v float64) float64 { return math.Mod(math.Abs(v), 500) }
		r := Rect{norm(x), norm(y), norm(w) + 1, norm(h) + 1}
		clip := Rect{norm(cx), norm(cy), norm(cw), norm(ch)}
		frac := r.VisibleFraction(clip)
		if frac < 0 || frac > 1+1e-9 {
			return false
		}
		// A strictly larger clip can only increase the fraction.
		bigger := Rect{clip.X - 10, clip.Y - 10, clip.W + 20, clip.H + 20}
		return r.VisibleFraction(bigger) >= frac-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: union contains both inputs.
func TestUnionProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		norm := func(v float64) float64 { return math.Mod(math.Abs(v), 100) }
		a := Rect{norm(ax), norm(ay), 5, 5}
		b := Rect{norm(bx), norm(by), 7, 3}
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

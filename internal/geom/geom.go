// Package geom provides the small amount of 2-D geometry the Q-Tag
// simulator needs: axis-aligned rectangles, points, intersections and
// visible-area fractions.
//
// All coordinates are float64 CSS-like pixels. The coordinate system has
// the origin at the top-left corner with y growing downwards, matching the
// web platform. Rectangles are half-open conceptually, but because all
// computations are over continuous areas the distinction never matters.
package geom

import (
	"fmt"
	"math"
)

// Point is a position in (CSS-)pixel space.
type Point struct {
	X, Y float64
}

// Add returns p translated by the vector q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p translated by the negation of q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.2f,%.2f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle identified by its top-left corner and
// its size. A Rect with non-positive width or height is empty.
type Rect struct {
	X, Y, W, H float64
}

// RectFromCorners builds the rectangle spanned by two opposite corners in
// any order.
func RectFromCorners(a, b Point) Rect {
	x0, x1 := math.Min(a.X, b.X), math.Max(a.X, b.X)
	y0, y1 := math.Min(a.Y, b.Y), math.Max(a.Y, b.Y)
	return Rect{X: x0, Y: y0, W: x1 - x0, H: y1 - y0}
}

// Empty reports whether the rectangle has no area.
func (r Rect) Empty() bool { return r.W <= 0 || r.H <= 0 }

// Area returns the rectangle's area; empty rectangles have area 0.
func (r Rect) Area() float64 {
	if r.Empty() {
		return 0
	}
	return r.W * r.H
}

// MaxX returns the x coordinate of the right edge.
func (r Rect) MaxX() float64 { return r.X + r.W }

// MaxY returns the y coordinate of the bottom edge.
func (r Rect) MaxY() float64 { return r.Y + r.H }

// Min returns the top-left corner.
func (r Rect) Min() Point { return Point{r.X, r.Y} }

// Max returns the bottom-right corner.
func (r Rect) Max() Point { return Point{r.MaxX(), r.MaxY()} }

// Center returns the midpoint of the rectangle.
func (r Rect) Center() Point { return Point{r.X + r.W/2, r.Y + r.H/2} }

// Translate returns r moved by (dx, dy).
func (r Rect) Translate(dx, dy float64) Rect {
	return Rect{X: r.X + dx, Y: r.Y + dy, W: r.W, H: r.H}
}

// Contains reports whether the point lies inside r (edges inclusive).
func (r Rect) Contains(p Point) bool {
	if r.Empty() {
		return false
	}
	return p.X >= r.X && p.X <= r.MaxX() && p.Y >= r.Y && p.Y <= r.MaxY()
}

// ContainsRect reports whether s lies fully within r.
func (r Rect) ContainsRect(s Rect) bool {
	if r.Empty() || s.Empty() {
		return false
	}
	return s.X >= r.X && s.Y >= r.Y && s.MaxX() <= r.MaxX() && s.MaxY() <= r.MaxY()
}

// Intersect returns the overlap of the two rectangles. The result is the
// zero Rect (empty) when they do not overlap.
func (r Rect) Intersect(s Rect) Rect {
	x0 := math.Max(r.X, s.X)
	y0 := math.Max(r.Y, s.Y)
	x1 := math.Min(r.MaxX(), s.MaxX())
	y1 := math.Min(r.MaxY(), s.MaxY())
	if x1 <= x0 || y1 <= y0 {
		return Rect{}
	}
	return Rect{X: x0, Y: y0, W: x1 - x0, H: y1 - y0}
}

// Intersects reports whether the rectangles share any area.
func (r Rect) Intersects(s Rect) bool { return !r.Intersect(s).Empty() }

// Union returns the smallest rectangle containing both inputs. Empty inputs
// are ignored; the union of two empty rectangles is the zero Rect.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return RectFromCorners(
		Point{math.Min(r.X, s.X), math.Min(r.Y, s.Y)},
		Point{math.Max(r.MaxX(), s.MaxX()), math.Max(r.MaxY(), s.MaxY())},
	)
}

// VisibleFraction returns the fraction of r's area that lies within clip,
// in [0, 1]. An empty r yields 0.
func (r Rect) VisibleFraction(clip Rect) float64 {
	a := r.Area()
	if a == 0 {
		return 0
	}
	return r.Intersect(clip).Area() / a
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.2f,%.2f %.2fx%.2f]", r.X, r.Y, r.W, r.H)
}

// Size is a width/height pair.
type Size struct {
	W, H float64
}

// Rect places the size at the given origin.
func (s Size) Rect(origin Point) Rect { return Rect{X: origin.X, Y: origin.Y, W: s.W, H: s.H} }

// String implements fmt.Stringer, rendering the conventional ad-size form
// such as "300x250".
func (s Size) String() string {
	if s.W == math.Trunc(s.W) && s.H == math.Trunc(s.H) {
		return fmt.Sprintf("%dx%d", int(s.W), int(s.H))
	}
	return fmt.Sprintf("%.2fx%.2f", s.W, s.H)
}

// Clamp returns v limited to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

package simclock

import (
	"testing"
	"time"
)

func TestZeroValueReady(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Errorf("zero clock Now = %v", c.Now())
	}
	fired := false
	c.AfterFunc(time.Second, func() { fired = true })
	c.Advance(time.Second)
	if !fired {
		t.Error("timer did not fire")
	}
}

func TestAdvanceFiresInOrder(t *testing.T) {
	c := New()
	var order []int
	c.AfterFunc(3*time.Second, func() { order = append(order, 3) })
	c.AfterFunc(1*time.Second, func() { order = append(order, 1) })
	c.AfterFunc(2*time.Second, func() { order = append(order, 2) })
	c.Advance(5 * time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("fire order = %v", order)
	}
	if c.Now() != 5*time.Second {
		t.Errorf("Now = %v", c.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	c := New()
	var order []string
	c.AfterFunc(time.Second, func() { order = append(order, "a") })
	c.AfterFunc(time.Second, func() { order = append(order, "b") })
	c.AfterFunc(time.Second, func() { order = append(order, "c") })
	c.Advance(time.Second)
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Errorf("same-instant order = %v", order)
	}
}

func TestNestedScheduling(t *testing.T) {
	c := New()
	var events []time.Duration
	c.AfterFunc(time.Second, func() {
		events = append(events, c.Now())
		c.AfterFunc(time.Second, func() {
			events = append(events, c.Now())
		})
	})
	c.Advance(3 * time.Second)
	if len(events) != 2 || events[0] != time.Second || events[1] != 2*time.Second {
		t.Errorf("nested events = %v", events)
	}
}

func TestClockAtCallbackTime(t *testing.T) {
	c := New()
	var at time.Duration = -1
	c.AfterFunc(700*time.Millisecond, func() { at = c.Now() })
	c.Advance(10 * time.Second)
	if at != 700*time.Millisecond {
		t.Errorf("callback saw Now = %v, want 700ms", at)
	}
}

func TestStop(t *testing.T) {
	c := New()
	fired := false
	timer := c.AfterFunc(time.Second, func() { fired = true })
	timer.Stop()
	if !timer.Stopped() {
		t.Error("Stopped() should be true")
	}
	c.Advance(2 * time.Second)
	if fired {
		t.Error("stopped timer fired")
	}
}

func TestEvery(t *testing.T) {
	c := New()
	var ticks []time.Duration
	c.Every(100*time.Millisecond, func() { ticks = append(ticks, c.Now()) })
	c.Advance(350 * time.Millisecond)
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks, want 3: %v", len(ticks), ticks)
	}
	for i, want := range []time.Duration{100, 200, 300} {
		if ticks[i] != want*time.Millisecond {
			t.Errorf("tick %d at %v, want %v", i, ticks[i], want*time.Millisecond)
		}
	}
}

func TestEveryStopFromCallback(t *testing.T) {
	c := New()
	count := 0
	var ticker *Timer
	ticker = c.Every(time.Second, func() {
		count++
		if count == 2 {
			ticker.Stop()
		}
	})
	c.Advance(10 * time.Second)
	if count != 2 {
		t.Errorf("ticker fired %d times, want 2", count)
	}
}

func TestEveryPanicsOnZeroInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New().Every(0, func() {})
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New().Advance(-time.Second)
}

func TestAfterFuncNegativeCoerced(t *testing.T) {
	c := New()
	fired := false
	c.AfterFunc(-time.Second, func() { fired = true })
	c.Advance(0)
	if !fired {
		t.Error("negative-delay timer should fire immediately")
	}
}

func TestAtAbsolute(t *testing.T) {
	c := New()
	c.Advance(5 * time.Second)
	var at time.Duration = -1
	c.At(7*time.Second, func() { at = c.Now() })
	// Past deadlines are coerced to now.
	var pastAt time.Duration = -1
	c.At(time.Second, func() { pastAt = c.Now() })
	c.Advance(5 * time.Second)
	if at != 7*time.Second {
		t.Errorf("At fired at %v", at)
	}
	if pastAt != 5*time.Second {
		t.Errorf("past At fired at %v", pastAt)
	}
}

func TestStep(t *testing.T) {
	c := New()
	var order []int
	c.AfterFunc(2*time.Second, func() { order = append(order, 2) })
	c.AfterFunc(1*time.Second, func() { order = append(order, 1) })
	if !c.Step() {
		t.Fatal("Step should fire first timer")
	}
	if c.Now() != time.Second || len(order) != 1 || order[0] != 1 {
		t.Errorf("after first step: now=%v order=%v", c.Now(), order)
	}
	if !c.Step() {
		t.Fatal("Step should fire second timer")
	}
	if c.Step() {
		t.Error("Step with empty queue should return false")
	}
}

func TestPendingAndNextDeadline(t *testing.T) {
	c := New()
	if _, ok := c.NextDeadline(); ok {
		t.Error("empty clock should have no deadline")
	}
	a := c.AfterFunc(time.Second, func() {})
	c.AfterFunc(2*time.Second, func() {})
	if c.Pending() != 2 {
		t.Errorf("Pending = %d", c.Pending())
	}
	if at, ok := c.NextDeadline(); !ok || at != time.Second {
		t.Errorf("NextDeadline = %v, %v", at, ok)
	}
	a.Stop()
	if c.Pending() != 1 {
		t.Errorf("Pending after stop = %d", c.Pending())
	}
	if at, ok := c.NextDeadline(); !ok || at != 2*time.Second {
		t.Errorf("NextDeadline after stop = %v, %v", at, ok)
	}
}

func TestAdvanceToNoRewind(t *testing.T) {
	c := New()
	c.Advance(10 * time.Second)
	c.AdvanceTo(5 * time.Second)
	if c.Now() != 10*time.Second {
		t.Errorf("AdvanceTo rewound the clock: %v", c.Now())
	}
}

func TestWallTime(t *testing.T) {
	c := New()
	c.Advance(90 * time.Minute)
	want := Epoch.Add(90 * time.Minute)
	if !c.WallTime().Equal(want) {
		t.Errorf("WallTime = %v, want %v", c.WallTime(), want)
	}
}

func TestManyTimersStress(t *testing.T) {
	c := New()
	fired := 0
	for i := 0; i < 10000; i++ {
		d := time.Duration(i%97) * time.Millisecond
		c.AfterFunc(d, func() { fired++ })
	}
	c.Advance(time.Second)
	if fired != 10000 {
		t.Errorf("fired %d of 10000", fired)
	}
	if c.Pending() != 0 {
		t.Errorf("Pending = %d after drain", c.Pending())
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	c := New()
	for i := 0; i < b.N; i++ {
		c.AfterFunc(time.Millisecond, func() {})
		c.Advance(time.Millisecond)
	}
}

// Package simclock implements the discrete-event virtual clock that drives
// every time-dependent component of the Q-Tag simulator.
//
// Nothing in the simulator sleeps: frame schedulers, viewability dwell
// timers and user-behaviour scripts all register callbacks on a *Clock, and
// experiments advance virtual time explicitly. This keeps multi-million-
// impression campaign simulations fast and — together with package
// simrand — bit-for-bit reproducible.
//
// Callbacks fire in timestamp order; callbacks scheduled for the same
// instant fire in registration order (FIFO), which gives deterministic
// interleaving of, for example, a frame paint and a dwell-timer expiry.
package simclock

import (
	"container/heap"
	"time"
)

// Epoch is the wall-clock instant corresponding to virtual time zero. It
// only matters when virtual timestamps are exported in wire formats.
var Epoch = time.Date(2019, time.December, 9, 0, 0, 0, 0, time.UTC)

// Clock is a virtual clock. The zero value is ready to use and starts at
// virtual time 0. Clock is not safe for concurrent use; the simulator is
// single-threaded by design (see package doc).
type Clock struct {
	now    time.Duration
	queue  timerQueue
	nextID uint64
	seq    uint64
}

// New returns a clock positioned at virtual time zero.
func New() *Clock { return &Clock{} }

// Now returns the current virtual time as an offset from the epoch.
func (c *Clock) Now() time.Duration { return c.now }

// WallTime returns the current virtual time as an absolute instant,
// anchored at Epoch.
func (c *Clock) WallTime() time.Time { return Epoch.Add(c.now) }

// Timer is a handle to a scheduled callback. Stop cancels it.
type Timer struct {
	id       uint64
	at       time.Duration
	seq      uint64
	interval time.Duration // 0 for one-shot timers
	fn       func()
	stopped  bool
	index    int // heap index, -1 when not queued
}

// Stop cancels the timer. It is safe to call multiple times and from
// within the timer's own callback.
func (t *Timer) Stop() { t.stopped = true }

// Stopped reports whether Stop has been called.
func (t *Timer) Stopped() bool { return t.stopped }

// AfterFunc schedules fn to run once, d from now. A non-positive d runs on
// the next Advance/Step at the current instant.
func (c *Clock) AfterFunc(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return c.schedule(c.now+d, 0, fn)
}

// At schedules fn to run at the given absolute virtual time. Times in the
// past are coerced to "now".
func (c *Clock) At(at time.Duration, fn func()) *Timer {
	if at < c.now {
		at = c.now
	}
	return c.schedule(at, 0, fn)
}

// Every schedules fn to run periodically with the given interval, first
// firing one interval from now. The interval must be positive.
func (c *Clock) Every(interval time.Duration, fn func()) *Timer {
	if interval <= 0 {
		panic("simclock: Every with non-positive interval")
	}
	return c.schedule(c.now+interval, interval, fn)
}

func (c *Clock) schedule(at, interval time.Duration, fn func()) *Timer {
	c.nextID++
	c.seq++
	t := &Timer{id: c.nextID, at: at, seq: c.seq, interval: interval, fn: fn, index: -1}
	heap.Push(&c.queue, t)
	return t
}

// Advance moves virtual time forward by d, firing every due callback in
// order. Callbacks may schedule further callbacks; those within the window
// also fire. Advance panics on negative d.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic("simclock: Advance with negative duration")
	}
	c.AdvanceTo(c.now + d)
}

// AdvanceTo moves virtual time forward to the absolute instant t (no-op if
// t is in the past), firing every due callback in order.
func (c *Clock) AdvanceTo(t time.Duration) {
	for {
		next, ok := c.peek()
		if !ok || next.at > t {
			break
		}
		c.popAndFire(next)
	}
	if t > c.now {
		c.now = t
	}
}

// Step fires the single next pending callback, advancing the clock to its
// deadline. It returns false when no callbacks are pending.
func (c *Clock) Step() bool {
	next, ok := c.peek()
	if !ok {
		return false
	}
	c.popAndFire(next)
	return true
}

// Pending returns the number of scheduled (non-stopped) callbacks.
func (c *Clock) Pending() int {
	n := 0
	for _, t := range c.queue {
		if !t.stopped {
			n++
		}
	}
	return n
}

// NextDeadline returns the virtual time of the next pending callback; ok is
// false when nothing is scheduled.
func (c *Clock) NextDeadline() (at time.Duration, ok bool) {
	next, ok := c.peek()
	if !ok {
		return 0, false
	}
	return next.at, true
}

// peek returns the earliest live timer, discarding stopped ones.
func (c *Clock) peek() (*Timer, bool) {
	for c.queue.Len() > 0 {
		t := c.queue[0]
		if t.stopped {
			heap.Pop(&c.queue)
			continue
		}
		return t, true
	}
	return nil, false
}

func (c *Clock) popAndFire(t *Timer) {
	heap.Pop(&c.queue)
	if t.at > c.now {
		c.now = t.at
	}
	if t.interval > 0 {
		// Re-arm before firing so the callback can Stop the ticker.
		t.at += t.interval
		c.seq++
		t.seq = c.seq
		heap.Push(&c.queue, t)
	}
	t.fn()
}

// timerQueue is a min-heap ordered by (deadline, registration sequence).
type timerQueue []*Timer

func (q timerQueue) Len() int { return len(q) }

func (q timerQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q timerQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *timerQueue) Push(x any) {
	t := x.(*Timer)
	t.index = len(*q)
	*q = append(*q, t)
}

func (q *timerQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*q = old[:n-1]
	return t
}

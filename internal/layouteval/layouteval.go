// Package layouteval reproduces the paper's §4.1 layout validation
// (Figure 2): the theoretical error in measuring an ad's viewable area
// for the X, dice and + monitoring-pixel layouts, across pixel counts
// from 9 to 60, under three sliding scenarios (diagonal, vertical,
// horizontal).
//
// The evaluation is purely geometric: for each slide position the ad is
// clipped by the viewport rectangle, each monitoring pixel is visible iff
// it falls inside the clip, and the layout's area estimate is compared to
// the true visible fraction. No browser machinery is involved — this is
// the same "theoretical error" the paper computes.
package layouteval

import (
	"fmt"
	"math"

	"qtag/internal/geom"
	"qtag/internal/qtag"
)

// Scenario is a Figure 2 sliding scenario.
type Scenario int

// The three scenarios of §4.1.
const (
	// Diagonal slides the ad into the viewport corner-first: the visible
	// region is a corner rectangle growing along both axes.
	Diagonal Scenario = iota
	// Vertical slides the ad in from the top edge.
	Vertical
	// Horizontal slides the ad in from the left edge.
	Horizontal
)

// String implements fmt.Stringer.
func (s Scenario) String() string {
	switch s {
	case Vertical:
		return "vertical"
	case Horizontal:
		return "horizontal"
	default:
		return "diagonal"
	}
}

// Scenarios returns the three scenarios in Figure 2 order.
func Scenarios() []Scenario { return []Scenario{Diagonal, Vertical, Horizontal} }

// DefaultPixelCounts is the Figure 2 sweep range: 9 to 60 monitoring
// pixels.
func DefaultPixelCounts() []int {
	return []int{9, 13, 17, 21, 25, 29, 33, 37, 41, 45, 50, 55, 60}
}

// Config parameterises a sweep.
type Config struct {
	// Size is the creative size (defaults to 300×250).
	Size geom.Size
	// Steps is the number of slide positions per scenario (defaults to
	// 200).
	Steps int
	// Method selects the area estimator (defaults to rectangle
	// inference, Q-Tag's production estimator).
	Method qtag.Method
}

func (c Config) withDefaults() Config {
	if c.Size.W == 0 || c.Size.H == 0 {
		c.Size = geom.Size{W: 300, H: 250}
	}
	if c.Steps == 0 {
		c.Steps = 200
	}
	return c
}

// Point is one point of a Figure 2 curve.
type Point struct {
	Layout    qtag.Layout
	Pixels    int
	Scenario  Scenario
	MeanError float64 // mean |estimated − true| visible fraction
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("%v/%d px/%v: %.4f", p.Layout, p.Pixels, p.Scenario, p.MeanError)
}

// MeanError computes the mean absolute area-estimation error for one
// layout / pixel-count / scenario combination.
func MeanError(cfg Config, layout qtag.Layout, pixels int, sc Scenario) float64 {
	cfg = cfg.withDefaults()
	est := qtag.NewAreaEstimator(qtag.Points(layout, pixels, cfg.Size), cfg.Size, cfg.Method)
	w, h := cfg.Size.W, cfg.Size.H
	var sum float64
	for i := 0; i <= cfg.Steps; i++ {
		f := float64(i) / float64(cfg.Steps)
		var clip geom.Rect
		var truth float64
		switch sc {
		case Vertical:
			clip = geom.Rect{X: -1, Y: -1, W: w + 2, H: 1 + f*h}
			truth = f
		case Horizontal:
			clip = geom.Rect{X: -1, Y: -1, W: 1 + f*w, H: h + 2}
			truth = f
		default:
			clip = geom.Rect{X: -1, Y: -1, W: 1 + f*w, H: 1 + f*h}
			truth = f * f
		}
		sum += math.Abs(est.EstimateClip(clip) - truth)
	}
	return sum / float64(cfg.Steps+1)
}

// Sweep computes the full Figure 2 grid: every layout × pixel count ×
// scenario.
func Sweep(cfg Config, pixelCounts []int) []Point {
	cfg = cfg.withDefaults()
	if len(pixelCounts) == 0 {
		pixelCounts = DefaultPixelCounts()
	}
	var out []Point
	for _, layout := range qtag.Layouts() {
		for _, n := range pixelCounts {
			for _, sc := range Scenarios() {
				out = append(out, Point{
					Layout: layout, Pixels: n, Scenario: sc,
					MeanError: MeanError(cfg, layout, n, sc),
				})
			}
		}
	}
	return out
}

// Curve extracts the (pixels → mean error) series of one layout averaged
// over the given scenarios (all three when none specified), matching how
// Figure 2 plots per-layout curves.
func Curve(points []Point, layout qtag.Layout, scenarios ...Scenario) (xs []int, ys []float64) {
	if len(scenarios) == 0 {
		scenarios = Scenarios()
	}
	want := map[Scenario]bool{}
	for _, s := range scenarios {
		want[s] = true
	}
	acc := map[int][]float64{}
	order := []int{}
	for _, p := range points {
		if p.Layout != layout || !want[p.Scenario] {
			continue
		}
		if _, seen := acc[p.Pixels]; !seen {
			order = append(order, p.Pixels)
		}
		acc[p.Pixels] = append(acc[p.Pixels], p.MeanError)
	}
	for _, n := range order {
		var sum float64
		for _, e := range acc[n] {
			sum += e
		}
		xs = append(xs, n)
		ys = append(ys, sum/float64(len(acc[n])))
	}
	return xs, ys
}

package layouteval

import (
	"math"
	"testing"

	"qtag/internal/geom"
	"qtag/internal/qtag"
)

func TestScenarioStrings(t *testing.T) {
	if Diagonal.String() != "diagonal" || Vertical.String() != "vertical" || Horizontal.String() != "horizontal" {
		t.Error("scenario names wrong")
	}
	if len(Scenarios()) != 3 {
		t.Error("Scenarios wrong")
	}
}

func TestDefaultPixelCounts(t *testing.T) {
	counts := DefaultPixelCounts()
	if counts[0] != 9 || counts[len(counts)-1] != 60 {
		t.Errorf("sweep range = %v, want 9..60 (Figure 2)", counts)
	}
	has25 := false
	for i := 1; i < len(counts); i++ {
		if counts[i] <= counts[i-1] {
			t.Fatal("counts must increase")
		}
		if counts[i] == 25 {
			has25 = true
		}
	}
	if !has25 {
		t.Error("the paper's 25-pixel point must be in the sweep")
	}
}

func TestSweepCoversGrid(t *testing.T) {
	pts := Sweep(Config{Steps: 50}, []int{9, 25})
	if len(pts) != 3*2*3 { // layouts × counts × scenarios
		t.Fatalf("sweep points = %d", len(pts))
	}
	for _, p := range pts {
		if p.MeanError < 0 || p.MeanError > 1 {
			t.Errorf("error out of range: %v", p)
		}
		if p.String() == "" {
			t.Error("point String empty")
		}
	}
}

// TestFigure2Claims verifies the §4.1 findings over the full sweep:
// dice worst everywhere; X ≈ + on axis-aligned slides; X best on the
// diagonal; error drops steeply 9→21 then flattens.
func TestFigure2Claims(t *testing.T) {
	cfg := Config{Steps: 120}
	at := func(l qtag.Layout, n int, sc Scenario) float64 {
		return MeanError(cfg, l, n, sc)
	}
	const n = 25
	for _, sc := range []Scenario{Vertical, Horizontal} {
		x, plus, dice := at(qtag.LayoutX, n, sc), at(qtag.LayoutPlus, n, sc), at(qtag.LayoutDice, n, sc)
		if dice <= x || dice <= plus {
			t.Errorf("%v: dice %.4f should be worst (X %.4f, + %.4f)", sc, dice, x, plus)
		}
		if math.Abs(x-plus) > 0.035 {
			t.Errorf("%v: X %.4f and + %.4f should be comparable", sc, x, plus)
		}
	}
	xd, plusd, diced := at(qtag.LayoutX, n, Diagonal), at(qtag.LayoutPlus, n, Diagonal), at(qtag.LayoutDice, n, Diagonal)
	if xd >= plusd || xd >= diced {
		t.Errorf("diagonal: X %.4f should be best (+ %.4f, dice %.4f)", xd, plusd, diced)
	}

	// Error-vs-count trend for the X layout averaged over scenarios.
	avg := func(n int) float64 {
		return (at(qtag.LayoutX, n, Vertical) + at(qtag.LayoutX, n, Horizontal) + at(qtag.LayoutX, n, Diagonal)) / 3
	}
	e9, e21, e25, e60 := avg(9), avg(21), avg(25), avg(60)
	if e21 >= e9 || e60 >= e25 {
		t.Errorf("error must decrease with pixels: 9→%.4f 21→%.4f 25→%.4f 60→%.4f", e9, e21, e25, e60)
	}
	if (e9 - e25) <= (e25 - e60) {
		t.Errorf("curve must flatten: early drop %.4f vs late drop %.4f", e9-e25, e25-e60)
	}
}

func TestCurveExtraction(t *testing.T) {
	pts := Sweep(Config{Steps: 40}, []int{9, 25, 60})
	xs, ys := Curve(pts, qtag.LayoutX)
	if len(xs) != 3 || len(ys) != 3 {
		t.Fatalf("curve lengths = %d/%d", len(xs), len(ys))
	}
	if xs[0] != 9 || xs[2] != 60 {
		t.Errorf("curve xs = %v", xs)
	}
	if ys[2] >= ys[0] {
		t.Errorf("error should shrink along the curve: %v", ys)
	}
	// Single-scenario extraction differs from the average.
	_, diag := Curve(pts, qtag.LayoutPlus, Diagonal)
	_, vert := Curve(pts, qtag.LayoutPlus, Vertical)
	if diag[0] == vert[0] {
		t.Error("scenario filter appears inert")
	}
}

func TestBannerSizeSweep(t *testing.T) {
	// The 320×50 banner from the §5 campaigns must also behave: error
	// decreases with pixels.
	banner := geom.Size{W: 320, H: 50}
	e9 := MeanError(Config{Size: banner, Steps: 80}, qtag.LayoutX, 9, Vertical)
	e25 := MeanError(Config{Size: banner, Steps: 80}, qtag.LayoutX, 25, Vertical)
	if e25 >= e9 {
		t.Errorf("banner errors: 9px %.4f vs 25px %.4f", e9, e25)
	}
}

func BenchmarkFigure2Cell(b *testing.B) {
	cfg := Config{Steps: 200}
	for i := 0; i < b.N; i++ {
		MeanError(cfg, qtag.LayoutX, 25, Diagonal)
	}
}

// Package viewability encodes the IAB/MRC viewable-ad-impression standard
// that Q-Tag measures against.
//
// The standard (MRC Viewable Ad Impression Measurement Guidelines, June
// 2014) defines an impression as *viewed* when a minimum fraction of the
// creative's pixels is exposed in the user's viewport for a minimum
// continuous duration:
//
//   - display ads:        ≥ 50 % of pixels for ≥ 1 second
//   - large display ads:  ≥ 30 % of pixels for ≥ 1 second
//     (creatives of 242 500 px² — e.g. 970×250 — or larger)
//   - video ads:          ≥ 50 % of pixels for ≥ 2 seconds
//
// The package also classifies a creative size into its format, which is
// what lets a single tag "identify the type of ad … and measure the
// specific conditions defined by the standard for each type" (§3).
package viewability

import (
	"fmt"
	"time"

	"qtag/internal/geom"
)

// Format is the ad format taxonomy used by the standard.
type Format int

const (
	// Display is a standard banner creative.
	Display Format = iota
	// LargeDisplay is a display creative of at least LargeDisplayMinArea
	// square pixels, measured against a relaxed 30 % area threshold.
	LargeDisplay
	// Video is an in-stream or out-stream video creative.
	Video
)

// LargeDisplayMinArea is the pixel area at or above which a display
// creative is treated as "large display" (970×250 = 242 500 px², per the
// MRC guidelines).
const LargeDisplayMinArea = 242500.0

// String implements fmt.Stringer.
func (f Format) String() string {
	switch f {
	case Display:
		return "display"
	case LargeDisplay:
		return "large-display"
	case Video:
		return "video"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// Criteria is the pair of conditions an impression must hold to be viewed:
// at least AreaFraction of the creative's pixels visible continuously for
// at least Dwell.
type Criteria struct {
	// AreaFraction is the minimum visible fraction of the creative's
	// pixels, in (0, 1].
	AreaFraction float64
	// Dwell is the minimum continuous duration the area condition must
	// hold.
	Dwell time.Duration
}

// String implements fmt.Stringer.
func (c Criteria) String() string {
	return fmt.Sprintf("≥%.0f%% for ≥%v", c.AreaFraction*100, c.Dwell)
}

// StandardCriteria returns the IAB/MRC criteria for the given format.
func StandardCriteria(f Format) Criteria {
	switch f {
	case LargeDisplay:
		return Criteria{AreaFraction: 0.30, Dwell: 1 * time.Second}
	case Video:
		return Criteria{AreaFraction: 0.50, Dwell: 2 * time.Second}
	default:
		return Criteria{AreaFraction: 0.50, Dwell: 1 * time.Second}
	}
}

// ClassifySize returns the format of a creative given its size and whether
// it carries video content. Video always classifies as Video; display
// creatives at or above LargeDisplayMinArea classify as LargeDisplay.
func ClassifySize(size geom.Size, isVideo bool) Format {
	if isVideo {
		return Video
	}
	if size.W*size.H >= LargeDisplayMinArea {
		return LargeDisplay
	}
	return Display
}

// CriteriaForSize is a convenience combining ClassifySize and
// StandardCriteria.
func CriteriaForSize(size geom.Size, isVideo bool) Criteria {
	return StandardCriteria(ClassifySize(size, isVideo))
}

// Oracle tracks ground-truth viewability from exact visible-fraction
// samples. The simulator uses it as the reference answer certification
// tests compare a measurement solution against: feed it the true visible
// fraction at each instant and it reports whether the standard's criteria
// have been met.
//
// Samples must be fed in non-decreasing time order; the fraction supplied
// at time t is assumed to hold until the next sample.
type Oracle struct {
	criteria Criteria

	lastTime    time.Duration
	lastVisible bool
	runStart    time.Duration
	haveSample  bool
	viewed      bool
	viewedAt    time.Duration
}

// NewOracle returns a ground-truth tracker for the given criteria.
func NewOracle(c Criteria) *Oracle {
	return &Oracle{criteria: c}
}

// Criteria returns the criteria the oracle evaluates.
func (o *Oracle) Criteria() Criteria { return o.criteria }

// Observe records that the creative's true visible fraction is frac from
// virtual time t onward. Out-of-order samples panic: the oracle is a
// measurement reference and silent reordering would corrupt it.
func (o *Oracle) Observe(t time.Duration, frac float64) {
	if o.haveSample && t < o.lastTime {
		panic(fmt.Sprintf("viewability: Observe out of order (%v after %v)", t, o.lastTime))
	}
	visible := frac >= o.criteria.AreaFraction
	if o.haveSample && o.lastVisible && !o.viewed {
		// Close the running visible interval [runStart, t).
		if t-o.runStart >= o.criteria.Dwell {
			o.viewed = true
			o.viewedAt = o.runStart + o.criteria.Dwell
		}
	}
	if visible && (!o.haveSample || !o.lastVisible) {
		o.runStart = t
	}
	o.lastTime = t
	o.lastVisible = visible
	o.haveSample = true
	// An instantly satisfied dwell (Dwell == 0) counts immediately.
	if visible && !o.viewed && o.criteria.Dwell == 0 {
		o.viewed = true
		o.viewedAt = t
	}
}

// FinishAt closes the observation window at time t and reports whether the
// impression met the criteria.
func (o *Oracle) FinishAt(t time.Duration) bool {
	if o.haveSample {
		o.Observe(t, boolToFrac(false))
	}
	return o.viewed
}

// Viewed reports whether the criteria have been met so far.
func (o *Oracle) Viewed() bool { return o.viewed }

// ViewedAt returns the virtual time at which the criteria were first met;
// valid only when Viewed is true.
func (o *Oracle) ViewedAt() time.Duration { return o.viewedAt }

func boolToFrac(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

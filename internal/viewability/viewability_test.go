package viewability

import (
	"testing"
	"time"

	"qtag/internal/geom"
)

func TestStandardCriteria(t *testing.T) {
	cases := []struct {
		f    Format
		area float64
		d    time.Duration
	}{
		{Display, 0.50, time.Second},
		{LargeDisplay, 0.30, time.Second},
		{Video, 0.50, 2 * time.Second},
	}
	for _, c := range cases {
		got := StandardCriteria(c.f)
		if got.AreaFraction != c.area || got.Dwell != c.d {
			t.Errorf("StandardCriteria(%v) = %v", c.f, got)
		}
	}
}

func TestClassifySize(t *testing.T) {
	cases := []struct {
		size  geom.Size
		video bool
		want  Format
	}{
		{geom.Size{W: 300, H: 250}, false, Display},
		{geom.Size{W: 320, H: 50}, false, Display},
		{geom.Size{W: 970, H: 250}, false, LargeDisplay},
		{geom.Size{W: 1000, H: 300}, false, LargeDisplay},
		{geom.Size{W: 300, H: 250}, true, Video},
		{geom.Size{W: 970, H: 250}, true, Video},
	}
	for _, c := range cases {
		if got := ClassifySize(c.size, c.video); got != c.want {
			t.Errorf("ClassifySize(%v, video=%v) = %v, want %v", c.size, c.video, got, c.want)
		}
	}
}

func TestCriteriaForSize(t *testing.T) {
	got := CriteriaForSize(geom.Size{W: 970, H: 250}, false)
	if got.AreaFraction != 0.30 {
		t.Errorf("large display area fraction = %v", got.AreaFraction)
	}
	got = CriteriaForSize(geom.Size{W: 640, H: 360}, true)
	if got.Dwell != 2*time.Second {
		t.Errorf("video dwell = %v", got.Dwell)
	}
}

func TestFormatString(t *testing.T) {
	if Display.String() != "display" || LargeDisplay.String() != "large-display" || Video.String() != "video" {
		t.Error("format names wrong")
	}
	if Format(99).String() != "Format(99)" {
		t.Errorf("unknown format = %q", Format(99).String())
	}
}

func TestCriteriaString(t *testing.T) {
	s := StandardCriteria(Display).String()
	if s != "≥50% for ≥1s" {
		t.Errorf("Criteria.String = %q", s)
	}
}

func sec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func TestOracleBasicViewed(t *testing.T) {
	o := NewOracle(StandardCriteria(Display))
	o.Observe(0, 0.6)
	if viewed := o.FinishAt(sec(1.5)); !viewed {
		t.Error("60% for 1.5s should be viewed")
	}
	if o.ViewedAt() != sec(1) {
		t.Errorf("ViewedAt = %v, want 1s", o.ViewedAt())
	}
}

func TestOracleTooShort(t *testing.T) {
	o := NewOracle(StandardCriteria(Display))
	o.Observe(0, 0.9)
	if o.FinishAt(sec(0.9)) {
		t.Error("0.9s dwell must not count")
	}
}

func TestOracleBelowThreshold(t *testing.T) {
	o := NewOracle(StandardCriteria(Display))
	o.Observe(0, 0.49)
	if o.FinishAt(sec(10)) {
		t.Error("49% visibility must not count for display")
	}
}

func TestOracleLargeDisplayRelaxedThreshold(t *testing.T) {
	o := NewOracle(StandardCriteria(LargeDisplay))
	o.Observe(0, 0.35)
	if !o.FinishAt(sec(2)) {
		t.Error("35% for 2s should satisfy the large-display 30% bar")
	}
}

func TestOracleVideoNeedsTwoSeconds(t *testing.T) {
	o := NewOracle(StandardCriteria(Video))
	o.Observe(0, 0.8)
	if o.FinishAt(sec(1.5)) {
		t.Error("video needs 2s")
	}
	o2 := NewOracle(StandardCriteria(Video))
	o2.Observe(0, 0.8)
	if !o2.FinishAt(sec(2.0)) {
		t.Error("video with exactly 2s should be viewed")
	}
}

func TestOracleInterruptedDwellResets(t *testing.T) {
	o := NewOracle(StandardCriteria(Display))
	o.Observe(0, 0.7)        // visible
	o.Observe(sec(0.8), 0)   // hidden before 1s
	o.Observe(sec(1.0), 0.7) // visible again
	if o.Viewed() {
		t.Error("interrupted dwell must not count yet")
	}
	if !o.FinishAt(sec(2.0)) {
		t.Error("second uninterrupted 1s window should count")
	}
	if o.ViewedAt() != sec(2.0) {
		t.Errorf("ViewedAt = %v, want 2s", o.ViewedAt())
	}
}

func TestOracleAccumulationDoesNotCount(t *testing.T) {
	// Two visible windows of 0.6s each: 1.2s total but never 1s continuous.
	o := NewOracle(StandardCriteria(Display))
	o.Observe(0, 0.9)
	o.Observe(sec(0.6), 0)
	o.Observe(sec(1.0), 0.9)
	if o.FinishAt(sec(1.6)) {
		t.Error("non-continuous exposure must not count")
	}
}

func TestOracleExactBoundary(t *testing.T) {
	o := NewOracle(StandardCriteria(Display))
	o.Observe(0, 0.5) // exactly 50% counts (≥)
	if !o.FinishAt(sec(1.0)) {
		t.Error("exactly 50% for exactly 1s should be viewed")
	}
}

func TestOracleViewedLatches(t *testing.T) {
	o := NewOracle(StandardCriteria(Display))
	o.Observe(0, 1)
	o.Observe(sec(3), 0) // hide after 3s; impression already viewed
	if !o.Viewed() {
		t.Error("viewed should latch after the dwell elapsed")
	}
	o.Observe(sec(5), 1)
	if !o.FinishAt(sec(5.1)) {
		t.Error("viewed must remain true")
	}
	if o.ViewedAt() != sec(1) {
		t.Errorf("ViewedAt = %v, want first satisfaction time 1s", o.ViewedAt())
	}
}

func TestOracleOutOfOrderPanics(t *testing.T) {
	o := NewOracle(StandardCriteria(Display))
	o.Observe(sec(2), 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-order sample")
		}
	}()
	o.Observe(sec(1), 1)
}

func TestOracleNoSamples(t *testing.T) {
	o := NewOracle(StandardCriteria(Display))
	if o.FinishAt(sec(10)) {
		t.Error("no samples should never be viewed")
	}
}

func TestOracleZeroDwell(t *testing.T) {
	o := NewOracle(Criteria{AreaFraction: 0.5, Dwell: 0})
	o.Observe(sec(1), 0.6)
	if !o.Viewed() {
		t.Error("zero dwell should satisfy instantly")
	}
	if o.ViewedAt() != sec(1) {
		t.Errorf("ViewedAt = %v", o.ViewedAt())
	}
}

func TestOracleFlappingVisibility(t *testing.T) {
	// Flap every 400ms: should never satisfy a 1s dwell.
	o := NewOracle(StandardCriteria(Display))
	for i := 0; i < 20; i++ {
		frac := 0.0
		if i%2 == 0 {
			frac = 1.0
		}
		o.Observe(time.Duration(i)*400*time.Millisecond, frac)
	}
	if o.FinishAt(sec(9)) {
		t.Error("400ms flapping must never satisfy 1s dwell")
	}
}

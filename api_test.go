package qtag_test

import (
	"bytes"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	qtagapi "qtag"
	"qtag/internal/beacon"
	"qtag/internal/browser"
	"qtag/internal/dom"
	"qtag/internal/geom"
	"qtag/internal/simclock"
)

// TestPublicAPIQuickstart drives the README's core flow through the
// facade only: deploy a tag on a simulated page, observe the beacons.
func TestPublicAPIQuickstart(t *testing.T) {
	clock := simclock.New()
	b := browser.New(clock, browser.Options{Profile: browser.CertificationProfiles()[1]})
	defer b.Close()
	w := b.OpenWindow(geom.Point{}, geom.Size{W: 1280, H: 720})
	doc := dom.NewDocument("https://pub.example", geom.Size{W: 1280, H: 5000})
	page := w.ActiveTab().Navigate(doc)
	frame := doc.Root().AttachIframe("https://dsp.example", geom.Rect{X: 100, Y: 100, W: 300, H: 250})
	creative := frame.Root().AppendChild("creative", geom.Rect{W: 300, H: 250})

	collector := qtagapi.NewCollector()
	rt := qtagapi.NewRuntime(page, creative, collector, qtagapi.Impression{
		ID: "i1", CampaignID: "c1", Format: qtagapi.Display,
	})
	if err := qtagapi.NewTag(qtagapi.TagConfig{}).Deploy(rt); err != nil {
		t.Fatal(err)
	}
	clock.Advance(1500 * time.Millisecond)
	if collector.InView("c1", beacon.SourceQTag) != 1 {
		t.Error("in-view missing through the public API")
	}
}

// TestPublicAPICommercialBaseline confirms the facade exposes the
// baseline and that it fails exactly where the paper says it does.
func TestPublicAPICommercialBaseline(t *testing.T) {
	clock := simclock.New()
	b := browser.New(clock, browser.Options{Profile: browser.AndroidWebViewProfile(true)})
	defer b.Close()
	w := b.OpenWindow(geom.Point{}, geom.Size{W: 412, H: 800})
	doc := dom.NewDocument("https://pub.example", geom.Size{W: 412, H: 2000})
	page := w.ActiveTab().Navigate(doc)
	frame := doc.Root().AttachIframe("https://dsp.example", geom.Rect{X: 50, Y: 100, W: 300, H: 250})
	creative := frame.Root().AppendChild("creative", geom.Rect{W: 300, H: 250})
	collector := qtagapi.NewCollector()

	commRT := qtagapi.NewRuntime(page, creative, collector, qtagapi.Impression{ID: "i", CampaignID: "c"})
	if err := qtagapi.NewCommercialTag().Deploy(commRT); err == nil {
		t.Error("commercial tag should fail in an old Android webview")
	}
	qRT := qtagapi.NewRuntime(page, creative, collector, qtagapi.Impression{ID: "i", CampaignID: "c"})
	if err := qtagapi.NewTag(qtagapi.TagConfig{}).Deploy(qRT); err != nil {
		t.Errorf("Q-Tag must work there: %v", err)
	}
}

// TestEndToEndHTTPPipeline is the full production shape over a real
// socket: collection server ← HTTP ← simulated campaigns, then stats
// queried back over HTTP and compared with the simulator's own
// aggregates.
func TestEndToEndHTTPPipeline(t *testing.T) {
	collector := qtagapi.NewCollector()
	srv := httptest.NewServer(qtagapi.NewCollectionServer(collector))
	defer srv.Close()
	sink := &qtagapi.HTTPSink{BaseURL: srv.URL, Retries: 2}

	res := qtagapi.RunProductionSim(qtagapi.SimConfig{
		Seed: 11, Campaigns: 4, ImpressionsPerCampaign: 40, BothCampaigns: 2,
		ExtraSink: sink,
	})

	// Server-side store must exactly mirror the simulator's local store.
	if collector.Len() != res.Store.Len() {
		t.Fatalf("HTTP store has %d events, local store %d", collector.Len(), res.Store.Len())
	}
	global, err := sink.FetchStats("")
	if err != nil {
		t.Fatal(err)
	}
	var served, loaded int
	for _, c := range res.Campaigns {
		served += c.Served
		loaded += c.QTagLoaded
	}
	if global.Served != served {
		t.Errorf("HTTP served = %d, sim served = %d", global.Served, served)
	}
	if global.Sources["qtag"].Loaded != loaded {
		t.Errorf("HTTP loaded = %d, sim loaded = %d", global.Sources["qtag"].Loaded, loaded)
	}
	// Per-campaign stats resolve too.
	stats, err := sink.FetchStats(res.Campaigns[0].Spec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Served != res.Campaigns[0].Served {
		t.Errorf("campaign stats mismatch: %d vs %d", stats.Served, res.Campaigns[0].Served)
	}
}

// TestFacadeReproductionEntryPoints smoke-tests every reproduction entry
// point through the facade at minimal scale.
func TestFacadeReproductionEntryPoints(t *testing.T) {
	// Figure 2.
	points := qtagapi.LayoutSweep(qtagapi.LayoutSweepConfig{Steps: 40}, []int{9, 25})
	if len(points) != 18 {
		t.Errorf("layout sweep points = %d", len(points))
	}
	// Table 1.
	rep := qtagapi.RunCertification(qtagapi.CertificationConfig{Seed: 1, AutomatedReps: 2, ManualReps: 1})
	if rep.Total.Total != 6*2*6*2+2*6*1 {
		t.Errorf("certification runs = %d", rep.Total.Total)
	}
	// §4.3 placements.
	pl := qtagapi.RunRandomPlacements(50, 3)
	if pl.Correct != 50 {
		t.Errorf("placements = %+v", pl)
	}
	// Figure 3 + Table 2.
	res := qtagapi.RunProductionSim(qtagapi.SimConfig{
		Seed: 2, Campaigns: 4, ImpressionsPerCampaign: 50, BothCampaigns: 4,
	})
	fig := qtagapi.Figure3(res)
	if fig[beacon.SourceQTag].MeanMeasured <= fig[beacon.SourceCommercial].MeanMeasured {
		t.Error("facade Figure3 ordering wrong")
	}
	cells := qtagapi.Table2(res)
	if len(cells) != 4 {
		t.Errorf("Table2 cells = %d", len(cells))
	}
	// §6.1.
	u := qtagapi.RevenueUplift(qtagapi.PaperMidSizeDSP())
	if math.Abs(u.DailyUSD-9500) > 1 {
		t.Errorf("uplift = %v", u.DailyUSD)
	}
	if qtagapi.RevenueUplift(qtagapi.PaperLargeDSP()).DailyUSD <= u.DailyUSD {
		t.Error("large DSP should gain more")
	}
	// Standard criteria via facade.
	if qtagapi.StandardCriteria(qtagapi.Video).Dwell != 2*time.Second {
		t.Error("facade criteria wrong")
	}
}

// TestJournaledCollectionServer exercises the durability path end to
// end: ingest over HTTP through a journaling sink, then rebuild a fresh
// collector from the journal bytes.
func TestJournaledCollectionServer(t *testing.T) {
	store := qtagapi.NewCollector()
	journalBuf := &writableBuffer{}
	journal := beacon.NewJournal(journalBuf)
	server := beacon.NewServerWithSink(store, beacon.Tee(store, journal))
	srv := httptest.NewServer(server)
	defer srv.Close()

	sink := &qtagapi.HTTPSink{BaseURL: srv.URL}
	events := []qtagapi.Event{
		{ImpressionID: "a", CampaignID: "c", Type: beacon.EventServed},
		{ImpressionID: "a", CampaignID: "c", Source: beacon.SourceQTag, Type: beacon.EventLoaded},
		{ImpressionID: "a", CampaignID: "c", Source: beacon.SourceQTag, Type: beacon.EventInView},
	}
	if err := sink.SubmitBatch(events); err != nil {
		t.Fatal(err)
	}
	if err := journal.Flush(); err != nil {
		t.Fatal(err)
	}

	restored := qtagapi.NewCollector()
	st, err := beacon.ReplayJournal(journalBuf.reader(), restored)
	if err != nil || st.Replayed != 3 {
		t.Fatalf("replay: %+v %v", st, err)
	}
	if restored.InView("c", beacon.SourceQTag) != 1 {
		t.Error("restored collector wrong")
	}
}

// writableBuffer is a minimal growable byte sink with a reader view.
type writableBuffer struct{ data []byte }

func (b *writableBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func (b *writableBuffer) reader() *bytes.Reader { return bytes.NewReader(b.data) }

// TestFacadeExtensions smoke-tests the extension entry points: the JS tag
// generator, the auditor and the predictor.
func TestFacadeExtensions(t *testing.T) {
	js := qtagapi.GenerateJS(qtagapi.TagConfig{}, "https://m.example/v1/events", geom.Size{W: 300, H: 250})
	if len(js) < 1000 {
		t.Errorf("generated tag suspiciously small: %d bytes", len(js))
	}

	res := qtagapi.RunProductionSim(qtagapi.SimConfig{
		Seed: 13, Campaigns: 5, ImpressionsPerCampaign: 60, BothCampaigns: 2,
		RecordImpressions: true, Parallelism: 2,
	})
	rep := qtagapi.Audit(res.Store, qtagapi.AuditOptions{})
	if !rep.Clean() {
		t.Errorf("simulation output failed its own audit: %s", rep)
	}
	model := qtagapi.TrainPredictor(res)
	if model.WDepth >= 0 {
		t.Errorf("predictor should learn that depth hurts: %s", model)
	}
	if p := model.Predict(0.05, true); p <= model.Predict(0.95, true) {
		t.Error("shallow placements must predict higher viewability")
	}
}

// Command benchgate compares a fresh `make bench` run against the
// committed benchmark baseline (BENCH_PR4.json) and fails when any
// ladder rung regressed beyond the tolerance — the CI tripwire that
// keeps the PR 4 shard-scaling wins from eroding silently.
//
// Entries are matched by (shards, group_commit, forwarding,
// trace_sample, overload). Only throughput is gated, and only on the
// sampling-off non-overload rungs: latency percentiles, traced-rung
// throughput and overload-rung goodput on shared CI runners are too
// noisy to gate on, but all are printed for the log. A fresh entry
// missing from the baseline is informational; a baseline entry missing
// from the fresh run is a failure (the ladder shrank).
//
// Usage:
//
//	go run ./scripts/benchgate.go -baseline BENCH_PR4.json -fresh bench-fresh.json [-max-regress 0.20]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

type entry struct {
	Shards      int     `json:"shards"`
	GroupCommit bool    `json:"group_commit"`
	Forwarding  bool    `json:"forwarding"`
	TraceSample float64 `json:"trace_sample"`
	Overload    bool    `json:"overload"`
	ShedRate    float64 `json:"shed_rate"`
	Eps         float64 `json:"throughput_eps"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	Accepted    int64   `json:"accepted"`
}

type benchFile struct {
	Entries []entry `json:"entries"`
}

type rung struct {
	Shards      int
	GroupCommit bool
	Forwarding  bool
	TraceSample float64
	Overload    bool
}

func (r rung) String() string {
	return fmt.Sprintf("shards=%-3d group_commit=%-5v forwarding=%-5v trace=%-4v overload=%-5v",
		r.Shards, r.GroupCommit, r.Forwarding, r.TraceSample, r.Overload)
}

func load(path string) (map[rung]entry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Entries) == 0 {
		return nil, fmt.Errorf("%s: no benchmark entries", path)
	}
	out := make(map[rung]entry, len(f.Entries))
	for _, e := range f.Entries {
		out[rung{e.Shards, e.GroupCommit, e.Forwarding, e.TraceSample, e.Overload}] = e
	}
	return out, nil
}

// gate compares every baseline rung against the fresh run, writing one
// verdict line per rung to w, and reports whether any rung failed.
func gate(w io.Writer, baseline, fresh map[rung]entry, maxRegress float64) bool {
	// Deterministic output order: by shards, group-commit last.
	rungs := make([]rung, 0, len(baseline))
	for r := range baseline {
		rungs = append(rungs, r)
	}
	sort.Slice(rungs, func(i, j int) bool {
		if rungs[i].Shards != rungs[j].Shards {
			return rungs[i].Shards < rungs[j].Shards
		}
		if rungs[i].GroupCommit != rungs[j].GroupCommit {
			return !rungs[i].GroupCommit
		}
		if rungs[i].Forwarding != rungs[j].Forwarding {
			return !rungs[i].Forwarding
		}
		if rungs[i].TraceSample != rungs[j].TraceSample {
			return rungs[i].TraceSample < rungs[j].TraceSample
		}
		return !rungs[i].Overload
	})
	failed := false
	for _, r := range rungs {
		base := baseline[r]
		got, ok := fresh[r]
		if !ok {
			fmt.Fprintf(w, "FAIL  %s missing from fresh run\n", r)
			failed = true
			continue
		}
		if base.Eps <= 0 {
			fmt.Fprintf(w, "SKIP  %s baseline throughput is zero\n", r)
			continue
		}
		delta := (got.Eps - base.Eps) / base.Eps
		status := "ok  "
		switch {
		case r.TraceSample > 0 || r.Overload:
			// Traced and overload rungs exist to publish the tracing tax
			// and the overload goodput/shed profile, not to gate them:
			// recorded-span cost and shed timing vary too much run to run.
			status = "info"
		case delta < -maxRegress:
			status = "FAIL"
			failed = true
		}
		line := fmt.Sprintf("%s  %s eps %10.0f -> %10.0f (%+6.1f%%)  p99 %.2fms -> %.2fms",
			status, r, base.Eps, got.Eps, delta*100, base.P99Ms, got.P99Ms)
		if r.Overload {
			line += fmt.Sprintf("  shed %.0f%% -> %.0f%%", base.ShedRate*100, got.ShedRate*100)
		}
		fmt.Fprintln(w, line)
	}
	for r := range fresh {
		if _, ok := baseline[r]; !ok {
			fmt.Fprintf(w, "note  %s new rung, no baseline\n", r)
		}
	}
	return failed
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_PR4.json", "committed baseline benchmark file")
	freshPath := flag.String("fresh", "bench-fresh.json", "freshly produced benchmark file to gate")
	maxRegress := flag.Float64("max-regress", 0.20, "maximum tolerated fractional throughput loss per rung")
	flag.Parse()

	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if gate(os.Stdout, baseline, fresh, *maxRegress) {
		fmt.Fprintf(os.Stderr, "benchgate: throughput regressed more than %.0f%% — investigate before merging, or re-baseline deliberately with `make bench`\n", *maxRegress*100)
		os.Exit(1)
	}
	fmt.Println("benchgate: all rungs within tolerance")
}

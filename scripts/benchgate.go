// Command benchgate compares a fresh `make bench` run against the
// committed benchmark baseline (BENCH_PR10.json) and fails when any
// ladder rung regressed beyond the tolerance — the CI tripwire that
// keeps the shard-scaling and binary-codec wins from eroding silently.
//
// Entries are matched by (shards, group_commit, forwarding,
// trace_sample, overload, binary). Only throughput is gated, and only
// on the sampling-off non-overload rungs: latency percentiles,
// traced-rung throughput and overload-rung goodput on shared CI
// runners are too noisy to gate on, but all are printed for the log. A
// fresh entry missing from the baseline is informational; a baseline
// entry missing from the fresh run is a failure (the ladder shrank).
//
// Usage:
//
//	go run ./scripts/benchgate.go -baseline BENCH_PR10.json -fresh bench-fresh.json [-max-regress 0.20]
//
// Allocation mode — with -allocs the two files are `go test -bench
// -benchmem` text outputs instead of ladder JSON, and the gate is on
// allocs/op, exactly: allocation counts are deterministic (unlike
// nanoseconds), so any increase over the committed baseline fails.
// This is the per-PR tripwire that keeps the zero-allocation decode
// path honest.
//
//	go run ./scripts/benchgate.go -allocs -baseline ALLOC_BASELINE.txt -fresh alloc-fresh.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

type entry struct {
	Shards      int     `json:"shards"`
	GroupCommit bool    `json:"group_commit"`
	Forwarding  bool    `json:"forwarding"`
	TraceSample float64 `json:"trace_sample"`
	Overload    bool    `json:"overload"`
	Binary      bool    `json:"binary"`
	ShedRate    float64 `json:"shed_rate"`
	Eps         float64 `json:"throughput_eps"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	Accepted    int64   `json:"accepted"`
}

type benchFile struct {
	Entries []entry `json:"entries"`
}

type rung struct {
	Shards      int
	GroupCommit bool
	Forwarding  bool
	TraceSample float64
	Overload    bool
	Binary      bool
}

func (r rung) String() string {
	return fmt.Sprintf("shards=%-3d group_commit=%-5v forwarding=%-5v trace=%-4v overload=%-5v binary=%-5v",
		r.Shards, r.GroupCommit, r.Forwarding, r.TraceSample, r.Overload, r.Binary)
}

func load(path string) (map[rung]entry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Entries) == 0 {
		return nil, fmt.Errorf("%s: no benchmark entries", path)
	}
	out := make(map[rung]entry, len(f.Entries))
	for _, e := range f.Entries {
		out[rung{e.Shards, e.GroupCommit, e.Forwarding, e.TraceSample, e.Overload, e.Binary}] = e
	}
	return out, nil
}

// gate compares every baseline rung against the fresh run, writing one
// verdict line per rung to w, and reports whether any rung failed.
func gate(w io.Writer, baseline, fresh map[rung]entry, maxRegress float64) bool {
	// Deterministic output order: by shards, group-commit last.
	rungs := make([]rung, 0, len(baseline))
	for r := range baseline {
		rungs = append(rungs, r)
	}
	sort.Slice(rungs, func(i, j int) bool {
		if rungs[i].Shards != rungs[j].Shards {
			return rungs[i].Shards < rungs[j].Shards
		}
		if rungs[i].GroupCommit != rungs[j].GroupCommit {
			return !rungs[i].GroupCommit
		}
		if rungs[i].Forwarding != rungs[j].Forwarding {
			return !rungs[i].Forwarding
		}
		if rungs[i].TraceSample != rungs[j].TraceSample {
			return rungs[i].TraceSample < rungs[j].TraceSample
		}
		if rungs[i].Overload != rungs[j].Overload {
			return !rungs[i].Overload
		}
		return !rungs[i].Binary
	})
	failed := false
	for _, r := range rungs {
		base := baseline[r]
		got, ok := fresh[r]
		if !ok {
			fmt.Fprintf(w, "FAIL  %s missing from fresh run\n", r)
			failed = true
			continue
		}
		if base.Eps <= 0 {
			fmt.Fprintf(w, "SKIP  %s baseline throughput is zero\n", r)
			continue
		}
		delta := (got.Eps - base.Eps) / base.Eps
		status := "ok  "
		switch {
		case r.TraceSample > 0 || r.Overload:
			// Traced and overload rungs exist to publish the tracing tax
			// and the overload goodput/shed profile, not to gate them:
			// recorded-span cost and shed timing vary too much run to run.
			status = "info"
		case delta < -maxRegress:
			status = "FAIL"
			failed = true
		}
		line := fmt.Sprintf("%s  %s eps %10.0f -> %10.0f (%+6.1f%%)  p99 %.2fms -> %.2fms",
			status, r, base.Eps, got.Eps, delta*100, base.P99Ms, got.P99Ms)
		if r.Overload {
			line += fmt.Sprintf("  shed %.0f%% -> %.0f%%", base.ShedRate*100, got.ShedRate*100)
		}
		fmt.Fprintln(w, line)
	}
	for r := range fresh {
		if _, ok := baseline[r]; !ok {
			fmt.Fprintf(w, "note  %s new rung, no baseline\n", r)
		}
	}
	return failed
}

// allocRow is one `go test -bench -benchmem` result line: the
// benchmark name with its trailing -GOMAXPROCS suffix stripped, plus
// the reported allocs/op and B/op.
type allocRow struct {
	AllocsPerOp int64
	BytesPerOp  int64
}

// parseAllocs reads `go test -bench -benchmem` text output and returns
// the allocs/op per benchmark. Lines that are not benchmark results
// (headers, PASS, ok) are ignored.
func parseAllocs(r io.Reader) (map[string]allocRow, error) {
	out := make(map[string]allocRow)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// Benchmark<Name>-8  N  x ns/op  y B/op  z allocs/op
		if len(fields) < 8 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if fields[len(fields)-1] != "allocs/op" || fields[len(fields)-3] != "B/op" {
			continue
		}
		allocs, err := strconv.ParseInt(fields[len(fields)-2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad allocs/op in %q: %w", sc.Text(), err)
		}
		bytesOp, err := strconv.ParseInt(fields[len(fields)-4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad B/op in %q: %w", sc.Text(), err)
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix so the gate is stable across
		// runner core counts.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		out[name] = allocRow{AllocsPerOp: allocs, BytesPerOp: bytesOp}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	return out, nil
}

func loadAllocs(path string) (map[string]allocRow, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rows, err := parseAllocs(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rows, nil
}

// gateAllocs compares allocs/op exactly: allocation counts are
// deterministic per Go version, so any increase is a regression, not
// noise. A baseline benchmark missing from the fresh run fails (the
// suite shrank); a new fresh benchmark and an improvement are notes.
func gateAllocs(w io.Writer, baseline, fresh map[string]allocRow) bool {
	names := make([]string, 0, len(baseline))
	for n := range baseline {
		names = append(names, n)
	}
	sort.Strings(names)
	failed := false
	for _, n := range names {
		base := baseline[n]
		got, ok := fresh[n]
		switch {
		case !ok:
			fmt.Fprintf(w, "FAIL  %-48s missing from fresh run\n", n)
			failed = true
		case got.AllocsPerOp > base.AllocsPerOp:
			fmt.Fprintf(w, "FAIL  %-48s allocs/op %d -> %d (B/op %d -> %d)\n",
				n, base.AllocsPerOp, got.AllocsPerOp, base.BytesPerOp, got.BytesPerOp)
			failed = true
		case got.AllocsPerOp < base.AllocsPerOp:
			fmt.Fprintf(w, "note  %-48s allocs/op improved %d -> %d — re-baseline to lock it in\n",
				n, base.AllocsPerOp, got.AllocsPerOp)
		default:
			fmt.Fprintf(w, "ok    %-48s allocs/op %d\n", n, got.AllocsPerOp)
		}
	}
	for n := range fresh {
		if _, ok := baseline[n]; !ok {
			fmt.Fprintf(w, "note  %-48s new benchmark, no baseline\n", n)
		}
	}
	return failed
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_PR10.json", "committed baseline benchmark file")
	freshPath := flag.String("fresh", "bench-fresh.json", "freshly produced benchmark file to gate")
	maxRegress := flag.Float64("max-regress", 0.20, "maximum tolerated fractional throughput loss per rung")
	allocs := flag.Bool("allocs", false, "gate `go test -benchmem` allocs/op text outputs instead of ladder JSON")
	flag.Parse()

	if *allocs {
		baseline, err := loadAllocs(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		fresh, err := loadAllocs(*freshPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		if gateAllocs(os.Stdout, baseline, fresh) {
			fmt.Fprintln(os.Stderr, "benchgate: allocs/op regressed — fix the allocation, or re-baseline deliberately with `make alloc-baseline`")
			os.Exit(1)
		}
		fmt.Println("benchgate: no allocation regressions")
		return
	}

	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if gate(os.Stdout, baseline, fresh, *maxRegress) {
		fmt.Fprintf(os.Stderr, "benchgate: throughput regressed more than %.0f%% — investigate before merging, or re-baseline deliberately with `make bench`\n", *maxRegress*100)
		os.Exit(1)
	}
	fmt.Println("benchgate: all rungs within tolerance")
}

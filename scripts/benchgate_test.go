package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baselineJSON = `{"entries":[
	{"shards":1,"group_commit":false,"throughput_eps":4000,"p99_ms":16},
	{"shards":4,"group_commit":true,"throughput_eps":15000,"p99_ms":6}
]}`

func TestLoad(t *testing.T) {
	m, err := load(writeBench(t, baselineJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m[rung{4, true, false, 0, false, false}].Eps != 15000 {
		t.Fatalf("loaded %+v", m)
	}
	if _, err := load(writeBench(t, `{"entries":[]}`)); err == nil {
		t.Fatal("empty entries must be an error")
	}
	if _, err := load(writeBench(t, `not json`)); err == nil {
		t.Fatal("malformed json must be an error")
	}
	if _, err := load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file must be an error")
	}
}

func TestGateVerdicts(t *testing.T) {
	baseline, err := load(writeBench(t, baselineJSON))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name     string
		fresh    string
		failed   bool
		wantLine string
	}{
		{"identical", baselineJSON, false, "ok  "},
		{"within-tolerance", `{"entries":[
			{"shards":1,"group_commit":false,"throughput_eps":3300,"p99_ms":17},
			{"shards":4,"group_commit":true,"throughput_eps":12500,"p99_ms":7}
		]}`, false, "ok  "},
		{"regressed", `{"entries":[
			{"shards":1,"group_commit":false,"throughput_eps":4100,"p99_ms":16},
			{"shards":4,"group_commit":true,"throughput_eps":9000,"p99_ms":12}
		]}`, true, "FAIL"},
		{"missing-rung", `{"entries":[
			{"shards":1,"group_commit":false,"throughput_eps":4000,"p99_ms":16}
		]}`, true, "missing from fresh run"},
		{"new-rung", `{"entries":[
			{"shards":1,"group_commit":false,"throughput_eps":4000,"p99_ms":16},
			{"shards":4,"group_commit":true,"throughput_eps":15000,"p99_ms":6},
			{"shards":16,"group_commit":true,"throughput_eps":16000,"p99_ms":6}
		]}`, false, "new rung, no baseline"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fresh, err := load(writeBench(t, tc.fresh))
			if err != nil {
				t.Fatal(err)
			}
			var out strings.Builder
			if failed := gate(&out, baseline, fresh, 0.20); failed != tc.failed {
				t.Fatalf("failed = %v, want %v\n%s", failed, tc.failed, out.String())
			}
			if !strings.Contains(out.String(), tc.wantLine) {
				t.Fatalf("output missing %q:\n%s", tc.wantLine, out.String())
			}
		})
	}
}

// The forwarding flag is part of the rung identity: a plain 16-shard
// run must not satisfy a forwarding baseline rung.
func TestGateForwardingRungIsDistinct(t *testing.T) {
	baseline, err := load(writeBench(t, `{"entries":[
		{"shards":16,"group_commit":true,"throughput_eps":16000,"p99_ms":6},
		{"shards":16,"group_commit":true,"forwarding":true,"throughput_eps":8000,"p99_ms":12}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := load(writeBench(t, `{"entries":[
		{"shards":16,"group_commit":true,"throughput_eps":16000,"p99_ms":6}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if !gate(&out, baseline, fresh, 0.20) {
		t.Fatalf("missing forwarding rung passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "forwarding=true  trace=0    overload=false binary=false missing from fresh run") {
		t.Fatalf("verdict does not name the forwarding rung:\n%s", out.String())
	}
}

// Traced rungs are part of the rung identity (a traced run must not
// satisfy an untraced baseline) but their throughput is informational:
// recorded-span cost is too noisy to gate.
func TestGateTracedRungsAreInformational(t *testing.T) {
	baseline, err := load(writeBench(t, `{"entries":[
		{"shards":16,"group_commit":true,"throughput_eps":16000,"p99_ms":6},
		{"shards":16,"group_commit":true,"trace_sample":1,"throughput_eps":12000,"p99_ms":9}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := load(writeBench(t, `{"entries":[
		{"shards":16,"group_commit":true,"throughput_eps":16000,"p99_ms":6},
		{"shards":16,"group_commit":true,"trace_sample":1,"throughput_eps":5000,"p99_ms":30}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if gate(&out, baseline, fresh, 0.20) {
		t.Fatalf("regressed traced rung failed the gate; it must be informational:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "info") {
		t.Fatalf("traced rung not reported as info:\n%s", out.String())
	}
	// A traced baseline rung missing entirely is still a shrunken ladder.
	fresh2, err := load(writeBench(t, `{"entries":[
		{"shards":16,"group_commit":true,"throughput_eps":16000,"p99_ms":6}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if !gate(&out, baseline, fresh2, 0.20) {
		t.Fatalf("missing traced rung passed the gate:\n%s", out.String())
	}
}

// Overload rungs are part of the rung identity (an overload run must
// not satisfy a plain baseline rung) but their goodput is
// informational: shed timing under a deliberate ramp is too noisy to
// gate, and the rung exists to publish the profile.
func TestGateOverloadRungIsInformational(t *testing.T) {
	baseline, err := load(writeBench(t, `{"entries":[
		{"shards":16,"group_commit":true,"throughput_eps":16000,"p99_ms":6},
		{"shards":16,"group_commit":true,"overload":true,"shed_rate":0.5,"throughput_eps":9000,"p99_ms":20}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := load(writeBench(t, `{"entries":[
		{"shards":16,"group_commit":true,"throughput_eps":16000,"p99_ms":6},
		{"shards":16,"group_commit":true,"overload":true,"shed_rate":0.8,"throughput_eps":2000,"p99_ms":60}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if gate(&out, baseline, fresh, 0.20) {
		t.Fatalf("regressed overload rung failed the gate; it must be informational:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "info") || !strings.Contains(out.String(), "shed 50% -> 80%") {
		t.Fatalf("overload rung not reported as info with shed rates:\n%s", out.String())
	}
	// A missing overload baseline rung is still a shrunken ladder.
	fresh2, err := load(writeBench(t, `{"entries":[
		{"shards":16,"group_commit":true,"throughput_eps":16000,"p99_ms":6}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if !gate(&out, baseline, fresh2, 0.20) {
		t.Fatalf("missing overload rung passed the gate:\n%s", out.String())
	}
}

// The binary flag is part of the rung identity: a JSON 16-shard run
// must not satisfy a binary-codec baseline rung, and vice versa.
func TestGateBinaryRungIsDistinct(t *testing.T) {
	baseline, err := load(writeBench(t, `{"entries":[
		{"shards":16,"group_commit":true,"throughput_eps":16000,"p99_ms":6},
		{"shards":16,"group_commit":true,"binary":true,"throughput_eps":40000,"p99_ms":3}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := load(writeBench(t, `{"entries":[
		{"shards":16,"group_commit":true,"throughput_eps":16000,"p99_ms":6}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if !gate(&out, baseline, fresh, 0.20) {
		t.Fatalf("missing binary rung passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "binary=true  missing from fresh run") {
		t.Fatalf("verdict does not name the binary rung:\n%s", out.String())
	}
	// And the binary rung's throughput IS gated — it is a sampling-off,
	// non-overload rung, the codec win the gate exists to protect.
	fresh2, err := load(writeBench(t, `{"entries":[
		{"shards":16,"group_commit":true,"throughput_eps":16000,"p99_ms":6},
		{"shards":16,"group_commit":true,"binary":true,"throughput_eps":20000,"p99_ms":7}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if !gate(&out, baseline, fresh2, 0.20) {
		t.Fatalf("regressed binary rung passed the gate:\n%s", out.String())
	}
}

// Faster rungs and zero baselines never fail the gate.
func TestGateImprovementAndZeroBaseline(t *testing.T) {
	baseline, _ := load(writeBench(t, `{"entries":[
		{"shards":1,"group_commit":false,"throughput_eps":0},
		{"shards":4,"group_commit":true,"throughput_eps":10000}
	]}`))
	fresh, _ := load(writeBench(t, `{"entries":[
		{"shards":1,"group_commit":false,"throughput_eps":5000},
		{"shards":4,"group_commit":true,"throughput_eps":20000}
	]}`))
	var out strings.Builder
	if gate(&out, baseline, fresh, 0.20) {
		t.Fatalf("improvement failed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "SKIP") {
		t.Fatalf("zero baseline not skipped:\n%s", out.String())
	}
}

const allocBaselineTxt = `goos: linux
goarch: amd64
pkg: qtag/internal/beacon
BenchmarkBinaryCodec/encode-8         	  500000	      2100 ns/op	       0 B/op	       0 allocs/op
BenchmarkBinaryCodec/decode-8         	  300000	      3900 ns/op	       0 B/op	       0 allocs/op
BenchmarkBinaryCodec/decode-copy-8    	  200000	      5100 ns/op	    4096 B/op	       2 allocs/op
BenchmarkEventKeyAppend-8             	 2000000	        60 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	qtag/internal/beacon	5.1s
`

func writeText(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "allocs.txt")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseAllocs(t *testing.T) {
	rows, err := loadAllocs(writeText(t, allocBaselineTxt))
	if err != nil {
		t.Fatal(err)
	}
	// The -8 GOMAXPROCS suffix must be stripped so runs from runners
	// with different core counts compare.
	got, ok := rows["BenchmarkBinaryCodec/decode-copy"]
	if !ok || got.AllocsPerOp != 2 || got.BytesPerOp != 4096 {
		t.Fatalf("parsed rows: %+v", rows)
	}
	if len(rows) != 4 {
		t.Fatalf("want 4 rows, got %d: %+v", len(rows), rows)
	}
	if _, err := loadAllocs(writeText(t, "PASS\nok\n")); err == nil {
		t.Fatal("output without benchmark lines must be an error")
	}
}

func TestGateAllocsVerdicts(t *testing.T) {
	baseline, err := loadAllocs(writeText(t, allocBaselineTxt))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name     string
		fresh    string
		failed   bool
		wantLine string
	}{
		// Identical counts pass; ns/op and iteration counts are free to
		// drift — only allocs/op is compared.
		{"identical-allocs-noisy-time", strings.ReplaceAll(allocBaselineTxt, "2100 ns/op", "9999 ns/op"), false, "ok  "},
		// One extra allocation per op is an exact failure, no tolerance.
		{"one-alloc-regression", strings.Replace(allocBaselineTxt, "0 B/op	       0 allocs/op\nBenchmarkBinaryCodec/decode", "16 B/op	       1 allocs/op\nBenchmarkBinaryCodec/decode", 1), true, "FAIL"},
		{"missing-bench", strings.Replace(allocBaselineTxt, "BenchmarkEventKeyAppend-8             	 2000000	        60 ns/op	       0 B/op	       0 allocs/op\n", "", 1), true, "missing from fresh run"},
		{"improvement", strings.Replace(allocBaselineTxt, "4096 B/op	       2 allocs/op", "2048 B/op	       1 allocs/op", 1), false, "improved 2 -> 1"},
		{"new-bench", allocBaselineTxt + "BenchmarkBinaryCodec/extra-8  100	10 ns/op	0 B/op	0 allocs/op\n", false, "new benchmark, no baseline"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fresh, err := loadAllocs(writeText(t, tc.fresh))
			if err != nil {
				t.Fatal(err)
			}
			var out strings.Builder
			if failed := gateAllocs(&out, baseline, fresh); failed != tc.failed {
				t.Fatalf("failed = %v, want %v\n%s", failed, tc.failed, out.String())
			}
			if !strings.Contains(out.String(), tc.wantLine) {
				t.Fatalf("output missing %q:\n%s", tc.wantLine, out.String())
			}
		})
	}
}

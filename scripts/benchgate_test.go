package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baselineJSON = `{"entries":[
	{"shards":1,"group_commit":false,"throughput_eps":4000,"p99_ms":16},
	{"shards":4,"group_commit":true,"throughput_eps":15000,"p99_ms":6}
]}`

func TestLoad(t *testing.T) {
	m, err := load(writeBench(t, baselineJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m[rung{4, true, false, 0, false}].Eps != 15000 {
		t.Fatalf("loaded %+v", m)
	}
	if _, err := load(writeBench(t, `{"entries":[]}`)); err == nil {
		t.Fatal("empty entries must be an error")
	}
	if _, err := load(writeBench(t, `not json`)); err == nil {
		t.Fatal("malformed json must be an error")
	}
	if _, err := load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file must be an error")
	}
}

func TestGateVerdicts(t *testing.T) {
	baseline, err := load(writeBench(t, baselineJSON))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name     string
		fresh    string
		failed   bool
		wantLine string
	}{
		{"identical", baselineJSON, false, "ok  "},
		{"within-tolerance", `{"entries":[
			{"shards":1,"group_commit":false,"throughput_eps":3300,"p99_ms":17},
			{"shards":4,"group_commit":true,"throughput_eps":12500,"p99_ms":7}
		]}`, false, "ok  "},
		{"regressed", `{"entries":[
			{"shards":1,"group_commit":false,"throughput_eps":4100,"p99_ms":16},
			{"shards":4,"group_commit":true,"throughput_eps":9000,"p99_ms":12}
		]}`, true, "FAIL"},
		{"missing-rung", `{"entries":[
			{"shards":1,"group_commit":false,"throughput_eps":4000,"p99_ms":16}
		]}`, true, "missing from fresh run"},
		{"new-rung", `{"entries":[
			{"shards":1,"group_commit":false,"throughput_eps":4000,"p99_ms":16},
			{"shards":4,"group_commit":true,"throughput_eps":15000,"p99_ms":6},
			{"shards":16,"group_commit":true,"throughput_eps":16000,"p99_ms":6}
		]}`, false, "new rung, no baseline"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fresh, err := load(writeBench(t, tc.fresh))
			if err != nil {
				t.Fatal(err)
			}
			var out strings.Builder
			if failed := gate(&out, baseline, fresh, 0.20); failed != tc.failed {
				t.Fatalf("failed = %v, want %v\n%s", failed, tc.failed, out.String())
			}
			if !strings.Contains(out.String(), tc.wantLine) {
				t.Fatalf("output missing %q:\n%s", tc.wantLine, out.String())
			}
		})
	}
}

// The forwarding flag is part of the rung identity: a plain 16-shard
// run must not satisfy a forwarding baseline rung.
func TestGateForwardingRungIsDistinct(t *testing.T) {
	baseline, err := load(writeBench(t, `{"entries":[
		{"shards":16,"group_commit":true,"throughput_eps":16000,"p99_ms":6},
		{"shards":16,"group_commit":true,"forwarding":true,"throughput_eps":8000,"p99_ms":12}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := load(writeBench(t, `{"entries":[
		{"shards":16,"group_commit":true,"throughput_eps":16000,"p99_ms":6}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if !gate(&out, baseline, fresh, 0.20) {
		t.Fatalf("missing forwarding rung passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "forwarding=true  trace=0    overload=false missing from fresh run") {
		t.Fatalf("verdict does not name the forwarding rung:\n%s", out.String())
	}
}

// Traced rungs are part of the rung identity (a traced run must not
// satisfy an untraced baseline) but their throughput is informational:
// recorded-span cost is too noisy to gate.
func TestGateTracedRungsAreInformational(t *testing.T) {
	baseline, err := load(writeBench(t, `{"entries":[
		{"shards":16,"group_commit":true,"throughput_eps":16000,"p99_ms":6},
		{"shards":16,"group_commit":true,"trace_sample":1,"throughput_eps":12000,"p99_ms":9}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := load(writeBench(t, `{"entries":[
		{"shards":16,"group_commit":true,"throughput_eps":16000,"p99_ms":6},
		{"shards":16,"group_commit":true,"trace_sample":1,"throughput_eps":5000,"p99_ms":30}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if gate(&out, baseline, fresh, 0.20) {
		t.Fatalf("regressed traced rung failed the gate; it must be informational:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "info") {
		t.Fatalf("traced rung not reported as info:\n%s", out.String())
	}
	// A traced baseline rung missing entirely is still a shrunken ladder.
	fresh2, err := load(writeBench(t, `{"entries":[
		{"shards":16,"group_commit":true,"throughput_eps":16000,"p99_ms":6}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if !gate(&out, baseline, fresh2, 0.20) {
		t.Fatalf("missing traced rung passed the gate:\n%s", out.String())
	}
}

// Overload rungs are part of the rung identity (an overload run must
// not satisfy a plain baseline rung) but their goodput is
// informational: shed timing under a deliberate ramp is too noisy to
// gate, and the rung exists to publish the profile.
func TestGateOverloadRungIsInformational(t *testing.T) {
	baseline, err := load(writeBench(t, `{"entries":[
		{"shards":16,"group_commit":true,"throughput_eps":16000,"p99_ms":6},
		{"shards":16,"group_commit":true,"overload":true,"shed_rate":0.5,"throughput_eps":9000,"p99_ms":20}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := load(writeBench(t, `{"entries":[
		{"shards":16,"group_commit":true,"throughput_eps":16000,"p99_ms":6},
		{"shards":16,"group_commit":true,"overload":true,"shed_rate":0.8,"throughput_eps":2000,"p99_ms":60}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if gate(&out, baseline, fresh, 0.20) {
		t.Fatalf("regressed overload rung failed the gate; it must be informational:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "info") || !strings.Contains(out.String(), "shed 50% -> 80%") {
		t.Fatalf("overload rung not reported as info with shed rates:\n%s", out.String())
	}
	// A missing overload baseline rung is still a shrunken ladder.
	fresh2, err := load(writeBench(t, `{"entries":[
		{"shards":16,"group_commit":true,"throughput_eps":16000,"p99_ms":6}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if !gate(&out, baseline, fresh2, 0.20) {
		t.Fatalf("missing overload rung passed the gate:\n%s", out.String())
	}
}

// Faster rungs and zero baselines never fail the gate.
func TestGateImprovementAndZeroBaseline(t *testing.T) {
	baseline, _ := load(writeBench(t, `{"entries":[
		{"shards":1,"group_commit":false,"throughput_eps":0},
		{"shards":4,"group_commit":true,"throughput_eps":10000}
	]}`))
	fresh, _ := load(writeBench(t, `{"entries":[
		{"shards":1,"group_commit":false,"throughput_eps":5000},
		{"shards":4,"group_commit":true,"throughput_eps":20000}
	]}`))
	var out strings.Builder
	if gate(&out, baseline, fresh, 0.20) {
		t.Fatalf("improvement failed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "SKIP") {
		t.Fatalf("zero baseline not skipped:\n%s", out.String())
	}
}
